#pragma once

/// \file event_reconstruction.hpp
/// Event reconstruction: measured hits -> ordered trajectory ->
/// Compton ring (paper Sec. II-B; method after Boggs & Jean [22]).
///
/// The reconstruction must decide which measured hit came first — the
/// readout has no timing at the sub-nanosecond scale of a photon
/// crossing.  For events with >= 3 hits, the intermediate scatters
/// over-determine the trajectory: the geometric angle at each interior
/// hit must match the Compton-kinematic angle implied by the running
/// energies, giving a chi^2 over hit permutations.  For 2-hit events
/// only kinematic validity and a likelihood heuristic are available,
/// so mis-ordering happens at a realistic rate — one of the error
/// sources the paper's dEta network learns to flag.

#include <optional>
#include <vector>

#include "detector/hit.hpp"
#include "detector/material.hpp"
#include "recon/ring.hpp"

namespace adapt::recon {

struct ReconstructionConfig {
  /// Quality filters applied before a ring is released to
  /// localization (the paper's "pre-localization stages").
  double min_total_energy = 0.080;   ///< [MeV].
  double max_total_energy = 30.0;    ///< [MeV].
  double min_lever_arm = 2.5;        ///< |r1 - r2| floor [cm]: short
                                     ///< levers give hopeless axis
                                     ///< resolution at the fiber pitch.
  double two_hit_margin = 0.4;       ///< A 2-hit event is kept only
                                     ///< when its best ordering beats
                                     ///< the reverse by this much in
                                     ///< negative log-likelihood;
                                     ///< ambiguous events are culled.
  double eta_slack = 0.05;           ///< Accept |eta| up to 1 + slack
                                     ///< (then clamp): measurement noise
                                     ///< pushes real rings past +-1.
  double max_order_chi2 = 12.0;      ///< Ordering-consistency cut for
                                     ///< events with >= 3 hits.
  int max_hits_for_ordering = 5;     ///< Permutation cap; larger events
                                     ///< keep only the most energetic
                                     ///< hits for ordering.
  double min_d_eta = 1e-3;           ///< Floor for propagated d_eta.
};

/// Outcome counters, useful for acceptance studies and tests.
struct ReconstructionStats {
  std::uint64_t accepted = 0;
  std::uint64_t too_few_hits = 0;
  std::uint64_t energy_cut = 0;
  std::uint64_t lever_arm_cut = 0;
  std::uint64_t eta_invalid = 0;
  std::uint64_t chi2_cut = 0;
  std::uint64_t ambiguous_order = 0;

  std::uint64_t total() const {
    return accepted + too_few_hits + energy_cut + lever_arm_cut +
           eta_invalid + chi2_cut + ambiguous_order;
  }
};

class EventReconstructor {
 public:
  explicit EventReconstructor(const detector::Material& material,
                              const ReconstructionConfig& config = {});

  /// Reconstruct one event into a Compton ring.  Returns nullopt when
  /// the event fails the quality filters; `stats`, when provided,
  /// counts why.
  std::optional<ComptonRing> reconstruct(const detector::MeasuredEvent& event,
                                         ReconstructionStats* stats = nullptr) const;

  /// Reconstruct a whole exposure (OpenMP-parallel across events, as
  /// the paper parallelizes its pipeline stages).
  std::vector<ComptonRing> reconstruct_all(
      const std::vector<detector::MeasuredEvent>& events,
      ReconstructionStats* stats = nullptr) const;

  const ReconstructionConfig& config() const { return config_; }

 private:
  /// Score a candidate hit ordering.  Returns the Compton-consistency
  /// chi^2 for >= 3 hits, or a negative-log-likelihood-style score for
  /// 2-hit events; lower is better.  Returns nullopt for kinematically
  /// impossible orderings.
  std::optional<double> ordering_score(
      const std::vector<const detector::MeasuredHit*>& order,
      double e_total) const;

  detector::Material material_;
  ReconstructionConfig config_;
};

}  // namespace adapt::recon
