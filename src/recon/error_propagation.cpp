#include "recon/error_propagation.hpp"

#include <algorithm>
#include <cmath>

#include "core/require.hpp"
#include "core/units.hpp"

namespace adapt::recon {

using core::kElectronMassMeV;

double d_eta_energy_term(double e_total, double e_first,
                         double sigma_e_total, double sigma_e_first) {
  ADAPT_REQUIRE(e_total > 0.0 && e_first > 0.0 && e_first < e_total,
                "invalid energies for d_eta propagation");
  const double e_prime = e_total - e_first;

  // eta = 1 + m (1/E - 1/E').  The measured quantities are E_total and
  // E1 (first deposit); E' = E - E1 couples both:
  //   d(eta)/dE_total = m (-1/E^2 + 1/E'^2)
  //   d(eta)/dE1      = m (        1/E'^2)  * (-1)  [since E' falls]
  // Note: sigma_e_total already aggregates all per-hit deposits, so E1
  // and E_total are correlated; treating them as independent slightly
  // overstates d_eta, which is conservative.
  const double de_total =
      kElectronMassMeV * (1.0 / (e_prime * e_prime) - 1.0 / (e_total * e_total));
  const double de_first = kElectronMassMeV / (e_prime * e_prime);

  const double v = de_total * de_total * sigma_e_total * sigma_e_total +
                   de_first * de_first * sigma_e_first * sigma_e_first;
  return std::sqrt(v);
}

double d_eta_position_term(const RingHit& hit1, const RingHit& hit2,
                           double eta) {
  const core::Vec3 lever = hit1.position - hit2.position;
  const double length = lever.norm();
  if (length <= 0.0) return 1.0;  // Degenerate: maximal uncertainty.

  // Average transverse position uncertainty of the two endpoints.  The
  // axis tilt is (sigma_1 (+) sigma_2) / L; it perturbs the cosine by
  // sin(theta) * tilt with sin(theta) = sqrt(1 - eta^2).
  const auto mean_sigma = [](const core::Vec3& s) {
    return (s.x + s.y + s.z) / 3.0;
  };
  const double s1 = mean_sigma(hit1.sigma_position);
  const double s2 = mean_sigma(hit2.sigma_position);
  const double tilt = std::sqrt(s1 * s1 + s2 * s2) / length;

  const double eta_clamped = std::clamp(eta, -1.0, 1.0);
  const double sin_theta = std::sqrt(1.0 - eta_clamped * eta_clamped);
  return sin_theta * tilt;
}

double propagate_d_eta(const RingHit& hit1, const RingHit& hit2,
                       double e_total, double sigma_e_total, double eta,
                       double min_d_eta) {
  const double energy_term = d_eta_energy_term(
      e_total, hit1.energy, sigma_e_total, hit1.sigma_energy);
  const double position_term = d_eta_position_term(hit1, hit2, eta);
  const double d = std::sqrt(energy_term * energy_term +
                             position_term * position_term);
  return std::max(d, min_d_eta);
}

}  // namespace adapt::recon
