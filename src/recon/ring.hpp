#pragma once

/// \file ring.hpp
/// The Compton ring: the per-photon source constraint that enters
/// localization (paper Fig. 2).
///
/// A reconstructed event constrains its source direction s to lie on a
/// cone of half-angle arccos(eta) around the axis c through the first
/// two hits; projected on the sky that cone is a ring.  The ring's
/// "thickness" d_eta parameterizes a radially symmetric Gaussian
/// probability density for the source direction (paper footnote 1):
///
///   P(s | ring) ~ exp( -(c.s - eta)^2 / (2 d_eta^2) ).

#include "core/vec3.hpp"
#include "detector/hit.hpp"

namespace adapt::recon {

/// Summary of one reconstructed hit as carried on the ring (position,
/// energy, and quoted uncertainties — these are NN input features).
struct RingHit {
  core::Vec3 position;
  double energy = 0.0;
  core::Vec3 sigma_position;
  double sigma_energy = 0.0;
};

struct ComptonRing {
  core::Vec3 axis;       ///< Unit vector c from hit 2 toward hit 1.
  double eta = 0.0;      ///< Cosine of the Compton scattering angle.
  double d_eta = 0.0;    ///< Uncertainty of eta (propagation of error,
                         ///< later replaced by the dEta network).

  double e_total = 0.0;        ///< Total deposited energy [MeV].
  double sigma_e_total = 0.0;  ///< Quoted uncertainty of e_total.

  RingHit hit1;  ///< First interaction (as ordered by reconstruction).
  RingHit hit2;  ///< Second interaction.

  int n_hits = 0;       ///< Hits in the underlying event.
  double order_chi2 = 0.0;  ///< Compton-consistency chi^2 of the chosen
                            ///< ordering (0 for 2-hit events).

  // --- simulation ground truth, for training and evaluation only ---
  detector::Origin origin = detector::Origin::kGrb;
  core::Vec3 true_direction;  ///< True photon travel direction.

  /// The cosine the ring *should* have reported for a source direction
  /// s: simply c.s.
  double cosine_to(const core::Vec3& s) const { return axis.dot(s); }

  /// Signed eta error for a known source direction.
  double eta_error(const core::Vec3& s) const { return eta - cosine_to(s); }
};

}  // namespace adapt::recon
