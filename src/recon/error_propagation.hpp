#pragma once

/// \file error_propagation.hpp
/// Analytic d_eta estimation by propagation of error (after Boggs &
/// Jean [22] and the paper's prior pipeline [4]).
///
/// Two contributions are propagated to first order:
///  * energy terms — eta depends on the total energy E and the
///    post-scatter energy E' = E - E1:
///      d(eta)/dE  = -m_e c^2 / E^2,   d(eta)/dE' = +m_e c^2 / E'^2;
///  * the lever-arm term — uncertainty in the two hit positions tilts
///    the axis c by ~ sigma_perp / L, which perturbs c.s by
///    sin(theta) * delta_axis.
///
/// The paper's central observation (Sec. II) is that this estimate is
/// *frequently wrong* — it cannot see mis-ordered hits, escaped
/// energy, or unmodeled instrument effects — and that the resulting
/// false certainty misleads the localization likelihood.  The dEta
/// network exists to replace it.  We therefore implement it faithfully
/// but make no attempt to patch its blind spots.

#include "recon/ring.hpp"

namespace adapt::recon {

/// Energy-only contribution to d_eta.
double d_eta_energy_term(double e_total, double e_first,
                         double sigma_e_total, double sigma_e_first);

/// Lever-arm (position) contribution to d_eta, for a ring with the
/// given measured eta (sin(theta) factor) and hit geometry.
double d_eta_position_term(const RingHit& hit1, const RingHit& hit2,
                           double eta);

/// Full propagated d_eta (quadrature sum of both terms), floored at
/// `min_d_eta` so no ring ever claims impossible certainty.
double propagate_d_eta(const RingHit& hit1, const RingHit& hit2,
                       double e_total, double sigma_e_total, double eta,
                       double min_d_eta = 1e-3);

}  // namespace adapt::recon
