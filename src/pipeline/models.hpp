#pragma once

/// \file models.hpp
/// Deployment wrappers around the two trained networks.
///
/// A wrapper owns everything inference needs — the layer stack (FP32
/// or the INT8 engine), the input standardizer, and for the background
/// network the per-polar-bin thresholds — and exposes the ring-level
/// operations the localization pipeline calls (paper Fig. 6).

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "nn/data.hpp"
#include "nn/sequential.hpp"
#include "quant/quantized_mlp.hpp"
#include "pipeline/features.hpp"
#include "pipeline/thresholds.hpp"
#include "recon/ring.hpp"

namespace adapt::pipeline {

/// Background-rejection network (classifier).  Supports the FP32
/// model and the INT8-quantized engine behind one interface so the
/// localization loop and the benches can swap them (Fig. 11).
class BackgroundNet {
 public:
  /// FP32 variant.
  BackgroundNet(nn::Sequential model, nn::Standardizer standardizer,
                PolarThresholds thresholds, bool uses_polar = true);
  /// INT8 variant.
  BackgroundNet(quant::QuantizedMlp model, nn::Standardizer standardizer,
                PolarThresholds thresholds, bool uses_polar = true);

  bool uses_polar() const { return uses_polar_; }
  bool quantized() const { return int8_.has_value(); }
  const PolarThresholds& thresholds() const { return thresholds_; }

  /// Raw logits for a batch of rings given the current polar guess.
  std::vector<float> logits(std::span<const recon::ComptonRing> rings,
                            double polar_deg_guess);

  /// Precompute the (unstandardized) feature matrix for a ring set.
  /// The 12 base features do not depend on the polar guess, so the
  /// Fig. 6 loop assembles them once during localization setup and
  /// re-classifies per iteration by rewriting only the polar column.
  nn::Tensor prepare_features(
      std::span<const recon::ComptonRing> rings) const;

  /// Logits from a prepared matrix at the given polar guess.
  std::vector<float> logits_prepared(const nn::Tensor& prepared,
                                     double polar_deg_guess);

  /// Classification from a prepared matrix (1 = background).
  std::vector<std::uint8_t> classify_prepared(const nn::Tensor& prepared,
                                              double polar_deg_guess);

  /// Background probabilities (sigmoid of the logits).
  std::vector<float> probabilities(std::span<const recon::ComptonRing> rings,
                                   double polar_deg_guess);

  /// Classification with the bin's dynamic threshold: 1 = background.
  std::vector<std::uint8_t> classify(std::span<const recon::ComptonRing> rings,
                                     double polar_deg_guess);

  /// Batched forward with an independent polar guess per ring: one
  /// feature Tensor, one forward() through the FP32 stack or the INT8
  /// engine — the serving layer's entry point (each queued request
  /// carries the localization estimate current when it was enqueued).
  /// Bit-identical to calling logits()/classify() once per ring: the
  /// GEMM kernels accumulate each output row in plain ascending-k
  /// order regardless of batch size, and the INT8 path is integer
  /// arithmetic throughout (see tests/serve/batch_equivalence_test).
  std::vector<float> logits_batch(std::span<const recon::ComptonRing> rings,
                                  std::span<const double> polar_deg_per_ring);

  /// Batched classification; the dynamic threshold is selected per
  /// ring from that ring's own polar guess.
  std::vector<std::uint8_t> classify_batch(
      std::span<const recon::ComptonRing> rings,
      std::span<const double> polar_deg_per_ring);

  /// Logits for an externally assembled (unstandardized) feature
  /// matrix — used by threshold fitting and tests.
  std::vector<float> logits_for_features(const nn::Tensor& raw_features);

  /// Persist / restore (FP32 variant only; the INT8 engine is
  /// re-exported from its QAT model instead).
  bool save(const std::string& path);
  static std::optional<BackgroundNet> load(const std::string& path);

  nn::Sequential* fp32_model() { return fp32_ ? &*fp32_ : nullptr; }
  quant::QuantizedMlp* int8_model() { return int8_ ? &*int8_ : nullptr; }
  const nn::Standardizer& standardizer() const { return standardizer_; }

  /// Digest over every deployed weight byte (FP32 stack or INT8
  /// engine) plus the standardizer — the reference the supervisor
  /// records at attach and revalidates on health ticks (SEU
  /// detection).  Deterministic for identical weights.
  std::uint64_t weight_checksum();

 private:
  std::optional<nn::Sequential> fp32_;
  std::optional<quant::QuantizedMlp> int8_;
  nn::Standardizer standardizer_;
  PolarThresholds thresholds_;
  bool uses_polar_ = true;
};

/// dEta regression network: predicts ln(d_eta); exposed as d_eta with
/// sane bounds.
///
/// A scalar coverage calibration multiplies the prediction so the
/// quoted width is statistically honest: it is fit on validation data
/// as the 68th percentile of |true error| / predicted width, making
/// "within 1 d_eta" mean 68% by construction (see
/// bench_ablation_deta for the before/after coverage numbers).
class DEtaNet {
 public:
  DEtaNet(nn::Sequential model, nn::Standardizer standardizer,
          bool uses_polar = true, double calibration = 1.0);

  bool uses_polar() const { return uses_polar_; }
  double calibration() const { return calibration_; }

  /// Predicted d_eta for each ring (exp of the network output,
  /// clamped to [floor, cap]).
  std::vector<double> predict(std::span<const recon::ComptonRing> rings,
                              double polar_deg_guess, double floor = 1e-4,
                              double cap = 2.0);

  /// Batched prediction with an independent polar guess per ring (one
  /// feature Tensor, one forward — the serving layer's entry point).
  /// Bit-identical to per-ring predict() calls at the same guesses.
  std::vector<double> predict_batch(std::span<const recon::ComptonRing> rings,
                                    std::span<const double> polar_deg_per_ring,
                                    double floor = 1e-4, double cap = 2.0);

  /// Batched prediction from an externally assembled (unstandardized)
  /// feature matrix — the fused serve path builds the matrix once per
  /// flush and shares it between the networks.  The tensor is taken by
  /// value because standardization happens in place on it.
  std::vector<double> predict_for_features(nn::Tensor raw_features,
                                           double floor, double cap);

  bool save(const std::string& path);
  static std::optional<DEtaNet> load(const std::string& path);

  nn::Sequential* model() { return &model_; }
  const nn::Standardizer& standardizer() const { return standardizer_; }

  /// Digest over the regression stack's weights plus the standardizer
  /// (see BackgroundNet::weight_checksum).
  std::uint64_t weight_checksum();

 private:
  std::vector<double> predict_from_features(nn::Tensor x, double floor,
                                            double cap);

  nn::Sequential model_;
  nn::Standardizer standardizer_;
  bool uses_polar_ = true;
  double calibration_ = 1.0;
};

/// Non-owning bundle of the deployed networks: the handle the
/// localization loop and the serving layer (`adapt::serve`) share.
/// Either pointer may be null — a null background net classifies
/// nothing as background, a null dEta net passes the analytic
/// (propagated) d_eta through — which is also exactly the degraded
/// behavior the server falls back to under overload.
///
/// Thread-safety: both batch calls are safe from concurrent threads on
/// the same underlying nets — inference forward passes write no model
/// state (enforced by tests/serve/concurrent tests under the TSan
/// gate).
struct Models {
  BackgroundNet* background = nullptr;
  DEtaNet* deta = nullptr;

  /// One fused forward over the batch: 1 = background, per-ring
  /// dynamic threshold.  All-zero when no background net is loaded.
  std::vector<std::uint8_t> classify_background_batch(
      std::span<const recon::ComptonRing> rings,
      std::span<const double> polar_deg_per_ring) const;

  /// One fused forward over the batch; falls back to each ring's
  /// propagated d_eta (clamped to [floor, cap]) without a dEta net.
  std::vector<double> predict_deta_batch(
      std::span<const recon::ComptonRing> rings,
      std::span<const double> polar_deg_per_ring, double floor = 1e-4,
      double cap = 2.0) const;

  /// Outputs of one fused batch inference (see infer_batch).
  struct BatchInference {
    std::vector<std::uint8_t> is_background;  ///< 1 = background veto.
    std::vector<double> d_eta;                ///< clamped to [floor, cap].
    bool used_deta_net = false;  ///< false = analytic passthrough.
  };

  /// Structure-of-arrays fused path for the serving layer: assembles
  /// the ring-feature matrix ONCE per flush and runs both networks
  /// from it, instead of each batch call re-walking the rings.  With
  /// the INT8 background engine that means one quantization of the
  /// panel and one quantized GEMM per layer for the whole batch.
  /// `allow_deta = false` (the server's degraded mode) skips the dEta
  /// forward and applies the same analytic clamp a null dEta net gets.
  /// Bit-identical to classify_background_batch + predict_deta_batch
  /// on the same inputs (asserted by tests/serve/batch_equivalence).
  BatchInference infer_batch(std::span<const recon::ComptonRing> rings,
                             std::span<const double> polar_deg_per_ring,
                             double floor = 1e-4, double cap = 2.0,
                             bool allow_deta = true) const;
};

}  // namespace adapt::pipeline
