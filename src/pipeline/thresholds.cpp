#include "pipeline/thresholds.hpp"

#include <algorithm>
#include <cmath>

#include "core/require.hpp"

namespace adapt::pipeline {

PolarThresholds::PolarThresholds() : thresholds_(kNumBins, 0.0) {}

int PolarThresholds::bin_of(double polar_deg) {
  const double clamped = std::clamp(polar_deg, 0.0, 89.999);
  return std::min(static_cast<int>(clamped / kBinWidthDeg), kNumBins - 1);
}

double PolarThresholds::logit_threshold(double polar_deg) const {
  return thresholds_[static_cast<std::size_t>(bin_of(polar_deg))];
}

void PolarThresholds::set_logit_threshold(int bin, double threshold) {
  ADAPT_REQUIRE(bin >= 0 && bin < kNumBins, "bin out of range");
  thresholds_[static_cast<std::size_t>(bin)] = threshold;
}

void PolarThresholds::fit(const std::vector<float>& logits,
                          const std::vector<float>& labels,
                          const std::vector<double>& polar_degs) {
  ADAPT_REQUIRE(logits.size() == labels.size() &&
                    logits.size() == polar_degs.size(),
                "threshold fit input size mismatch");

  struct Sample {
    float logit;
    float label;
  };
  std::vector<std::vector<Sample>> bins(kNumBins);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    bins[static_cast<std::size_t>(bin_of(polar_degs[i]))].push_back(
        Sample{logits[i], labels[i]});
  }

  for (int b = 0; b < kNumBins; ++b) {
    auto& samples = bins[static_cast<std::size_t>(b)];
    if (samples.empty()) continue;  // Keep the neutral default.
    std::sort(samples.begin(), samples.end(),
              [](const Sample& a, const Sample& s) { return a.logit < s.logit; });

    // Sweep candidate thresholds between consecutive logits.  A sample
    // is classified background when logit >= threshold, so with the
    // threshold after position k the misclassifications are the
    // background samples among the first k (predicted GRB) plus the
    // GRB samples from k onward (predicted background).
    std::size_t total_bkg = 0;
    for (const Sample& s : samples)
      if (s.label > 0.5f) ++total_bkg;

    std::size_t bkg_below = 0;   // Background predicted GRB.
    std::size_t grb_below = 0;
    std::size_t best_errors = samples.size() - total_bkg;  // Threshold at
                                                           // -inf: every
                                                           // GRB flagged.
    double best_threshold = static_cast<double>(samples.front().logit) - 1.0;
    for (std::size_t k = 0; k < samples.size(); ++k) {
      if (samples[k].label > 0.5f)
        ++bkg_below;
      else
        ++grb_below;
      const std::size_t grb_above = (samples.size() - total_bkg) - grb_below;
      const std::size_t errors = bkg_below + grb_above;
      if (errors < best_errors) {
        best_errors = errors;
        best_threshold = k + 1 < samples.size()
                             ? 0.5 * (static_cast<double>(samples[k].logit) +
                                      static_cast<double>(samples[k + 1].logit))
                             : static_cast<double>(samples[k].logit) + 1.0;
      }
    }
    thresholds_[static_cast<std::size_t>(b)] = best_threshold;
  }
}

std::map<std::string, double> PolarThresholds::to_metadata() const {
  std::map<std::string, double> meta;
  for (int b = 0; b < kNumBins; ++b) {
    meta["polar_thr_" + std::to_string(b)] =
        thresholds_[static_cast<std::size_t>(b)];
  }
  return meta;
}

PolarThresholds PolarThresholds::from_metadata(
    const std::map<std::string, double>& metadata) {
  PolarThresholds t;
  for (int b = 0; b < kNumBins; ++b) {
    const auto it = metadata.find("polar_thr_" + std::to_string(b));
    if (it != metadata.end()) t.set_logit_threshold(b, it->second);
  }
  return t;
}

}  // namespace adapt::pipeline
