#pragma once

/// \file alert.hpp
/// The complete on-board alert pipeline, packaged as a library API:
/// detection (multi-timescale rate trigger) -> event selection around
/// the triggered window -> Compton-ring reconstruction -> ML-in-the-
/// loop localization (paper Fig. 6) -> posterior sky map with a
/// credible radius.  This is what a GCN-style alert broadcast needs;
/// examples/burst_alert.cpp drives it end to end.
///
/// Flight usage: calibrate_background() keeps the running background
/// rate up to date from quiet windows; process_window() turns each
/// exposure window into (at most) one Alert.

#include <optional>
#include <span>

#include "core/rng.hpp"
#include "detector/hit.hpp"
#include "detector/material.hpp"
#include "loc/skymap.hpp"
#include "pipeline/ml_localizer.hpp"
#include "recon/event_reconstruction.hpp"
#include "trigger/rate_trigger.hpp"

namespace adapt::pipeline {

struct AlertConfig {
  trigger::TriggerConfig trigger;
  double pre_margin_s = 0.05;   ///< Event selection before the window.
  double post_margin_s = 0.25;  ///< ...and after (pulse tail).
  detector::Material material = detector::Material::csi();
  recon::ReconstructionConfig reconstruction;
  MlLocalizerConfig localizer;
  loc::SkyMapConfig skymap;
  double credible_content = 0.9;  ///< Error-circle probability mass.
  std::size_t min_rings = 10;     ///< Withhold alerts below this.
};

/// The broadcast payload (plus bookkeeping for diagnostics).
struct Alert {
  bool issued = false;             ///< False: no trigger or too few rings.
  trigger::TriggerResult detection;
  core::Vec3 direction;            ///< Best-fit source direction.
  double polar_deg = 0.0;
  double azimuth_deg = 0.0;
  double credible_radius_deg = 0.0;
  std::size_t events_selected = 0;
  std::size_t rings_total = 0;
  std::size_t rings_kept = 0;
  int rejection_iterations = 0;
  std::optional<loc::SkyMap> sky_map;  ///< Present when issued.
};

class AlertPipeline {
 public:
  explicit AlertPipeline(const AlertConfig& config = {});

  /// Update the running background-rate estimate from a burst-free
  /// window (flight software calls this continuously).
  void calibrate_background(
      std::span<const detector::MeasuredEvent> events, double exposure_s);

  double background_rate_hz() const { return background_rate_hz_; }

  /// Process one exposure window: returns an un-issued Alert when the
  /// trigger stays quiet or localization is impossible.  Either
  /// network may be null (per MlLocalizer semantics).
  Alert process_window(std::span<const detector::MeasuredEvent> events,
                       double exposure_s, BackgroundNet* background_net,
                       DEtaNet* deta_net, core::Rng& rng) const;

  const AlertConfig& config() const { return config_; }

 private:
  AlertConfig config_;
  double background_rate_hz_;
};

}  // namespace adapt::pipeline
