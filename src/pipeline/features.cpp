#include "pipeline/features.hpp"

#include <algorithm>
#include <cmath>

#include "core/contract.hpp"

namespace adapt::pipeline {

void write_base_features(const recon::ComptonRing& ring, float* row) {
  std::size_t i = 0;
  row[i++] = static_cast<float>(ring.e_total);
  row[i++] = static_cast<float>(ring.hit1.position.x);
  row[i++] = static_cast<float>(ring.hit1.position.y);
  row[i++] = static_cast<float>(ring.hit1.position.z);
  row[i++] = static_cast<float>(ring.hit1.energy);
  row[i++] = static_cast<float>(ring.hit2.position.x);
  row[i++] = static_cast<float>(ring.hit2.position.y);
  row[i++] = static_cast<float>(ring.hit2.position.z);
  row[i++] = static_cast<float>(ring.hit2.energy);
  row[i++] = static_cast<float>(ring.sigma_e_total);
  row[i++] = static_cast<float>(ring.hit1.sigma_energy);
  row[i++] = static_cast<float>(ring.hit2.sigma_energy);
  ADAPT_REQUIRE(i == kBaseFeatureCount, "feature layout drifted");
  // A NaN feature would propagate through every classifier score
  // downstream; checked builds pin the blame on the offending ring.
  for (std::size_t k = 0; k < kBaseFeatureCount; ++k)
    ADAPT_CHECK_FINITE(static_cast<double>(row[k]), "base feature value");
}

nn::Tensor feature_matrix(std::span<const recon::ComptonRing> rings,
                          bool include_polar, double polar_deg_guess) {
  const std::size_t d = include_polar ? kFeatureCount : kBaseFeatureCount;
  nn::Tensor x(rings.size(), d);
  for (std::size_t r = 0; r < rings.size(); ++r) {
    write_base_features(rings[r], x.data() + r * d);
    if (include_polar)
      x(r, kBaseFeatureCount) = static_cast<float>(polar_deg_guess);
  }
  return x;
}

nn::Tensor feature_matrix(std::span<const recon::ComptonRing> rings,
                          std::span<const double> polar_deg_per_ring) {
  ADAPT_REQUIRE(polar_deg_per_ring.size() == rings.size(),
                "per-ring polar guess count mismatch");
  nn::Tensor x(rings.size(), kFeatureCount);
  for (std::size_t r = 0; r < rings.size(); ++r) {
    write_base_features(rings[r], x.data() + r * kFeatureCount);
    x(r, kBaseFeatureCount) = static_cast<float>(polar_deg_per_ring[r]);
  }
  return x;
}

float background_label(const recon::ComptonRing& ring) {
  return ring.origin == detector::Origin::kBackground ? 1.0f : 0.0f;
}

float deta_target(const recon::ComptonRing& ring,
                  const core::Vec3& true_source, double floor, double cap) {
  ADAPT_REQUIRE(floor > 0.0 && cap > floor, "invalid d_eta bounds");
  const double err = std::abs(ring.eta_error(true_source));
  return static_cast<float>(std::log(std::clamp(err, floor, cap)));
}

}  // namespace adapt::pipeline
