#include "pipeline/alert.hpp"

#include <algorithm>

#include "core/require.hpp"
#include "core/units.hpp"

namespace adapt::pipeline {

AlertPipeline::AlertPipeline(const AlertConfig& config)
    : config_(config), background_rate_hz_(config.trigger.background_rate_hz) {
  ADAPT_REQUIRE(config.pre_margin_s >= 0.0 && config.post_margin_s >= 0.0,
                "selection margins must be >= 0");
  ADAPT_REQUIRE(config.credible_content > 0.0 &&
                    config.credible_content < 1.0,
                "credible content in (0, 1)");
}

void AlertPipeline::calibrate_background(
    std::span<const detector::MeasuredEvent> events, double exposure_s) {
  background_rate_hz_ =
      trigger::RateTrigger::estimate_background_rate(events, exposure_s);
}

Alert AlertPipeline::process_window(
    std::span<const detector::MeasuredEvent> events, double exposure_s,
    BackgroundNet* background_net, DEtaNet* deta_net,
    core::Rng& rng) const {
  Alert alert;

  // --- Detection -----------------------------------------------------
  trigger::TriggerConfig trigger_config = config_.trigger;
  trigger_config.background_rate_hz = background_rate_hz_;
  const trigger::RateTrigger rate_trigger(trigger_config);
  alert.detection = rate_trigger.scan(events, exposure_s);
  if (!alert.detection.triggered) return alert;

  // --- Event selection -------------------------------------------------
  const double t_lo = alert.detection.t_start - config_.pre_margin_s;
  const double t_hi = alert.detection.t_end + config_.post_margin_s;
  std::vector<detector::MeasuredEvent> selected;
  for (const auto& event : events) {
    if (event.time_s >= t_lo && event.time_s < t_hi)
      selected.push_back(event);
  }
  alert.events_selected = selected.size();

  // --- Reconstruction ----------------------------------------------------
  const recon::EventReconstructor reconstructor(config_.material,
                                                config_.reconstruction);
  const auto rings = reconstructor.reconstruct_all(selected);
  alert.rings_total = rings.size();
  if (rings.size() < config_.min_rings) return alert;

  // --- Localization (Fig. 6) ----------------------------------------------
  const MlLocalizer localizer(config_.localizer);
  const MlLocalizationResult result =
      localizer.run(rings, background_net, deta_net, rng);
  if (!result.valid) return alert;

  // --- Alert product ---------------------------------------------------
  alert.issued = true;
  alert.direction = result.direction;
  alert.polar_deg = core::rad_to_deg(core::polar_of(result.direction));
  alert.azimuth_deg = core::rad_to_deg(core::azimuth_of(result.direction));
  alert.rings_kept = result.rings_kept;
  alert.rejection_iterations = result.background_iterations;
  alert.sky_map = loc::SkyMap::compute(rings, config_.skymap);
  alert.credible_radius_deg =
      alert.sky_map->credible_radius_deg(config_.credible_content);
  return alert;
}

}  // namespace adapt::pipeline
