#pragma once

/// \file ml_localizer.hpp
/// The paper's contribution: the ML-in-the-loop localization pipeline
/// (Fig. 6).
///
/// Because the networks take the source polar angle as an input, they
/// cannot run before localization — the angle is what localization
/// computes.  The pipeline therefore iterates:
///
///   1. localize once without ML (approximation + refinement) to get
///      an initial estimate s-hat;
///   2. up to `max_background_iterations` times (paper: 5): classify
///      every ring with the background network using s-hat's polar
///      angle, drop the flagged rings, and re-localize the survivors
///      starting from s-hat; stop early when the estimate converges;
///   3. replace the surviving rings' propagated d_eta with the dEta
///      network's predictions;
///   4. re-run localization from the last s-hat for the final answer.
///
/// The loop may be halted at any iteration and still yields the
/// current best estimate (the paper's accuracy/latency trade-off).
/// Per-stage wall-clock is collected into StageTimings when requested
/// — that instrumentation produces Tables I and II.

#include <optional>
#include <vector>

#include "core/rng.hpp"
#include "loc/localizer.hpp"
#include "pipeline/models.hpp"
#include "recon/ring.hpp"

namespace adapt::pipeline {

struct MlLocalizerConfig {
  loc::LocalizerConfig localizer;
  int max_background_iterations = 5;  ///< Paper's cap.
  double convergence_angle_rad = 2e-3;  ///< ~0.11 degrees between
                                        ///< successive s-hat estimates.
  double deta_floor = 1e-4;
  double deta_cap = 2.0;
};

/// Wall-clock per pipeline stage, in milliseconds (Tables I and II
/// rows).  Reconstruction is timed by the caller (it happens before
/// localization); the rest accumulate inside run().
struct StageTimings {
  double reconstruction_ms = 0.0;
  double setup_ms = 0.0;            ///< Feature assembly + likelihood prep.
  double deta_inference_ms = 0.0;
  double background_inference_ms = 0.0;
  double approx_refine_ms = 0.0;
  double total_ms = 0.0;
};

struct MlLocalizationResult {
  core::Vec3 direction;        ///< Final source estimate.
  bool valid = false;
  int background_iterations = 0;  ///< Iterations of the Fig. 6 loop.
  bool loop_converged = false;
  std::size_t rings_in = 0;     ///< Rings entering localization.
  std::size_t rings_kept = 0;   ///< Survivors of background rejection.
  loc::LocalizationResult base;  ///< The no-ML initial localization.
};

class MlLocalizer {
 public:
  explicit MlLocalizer(const MlLocalizerConfig& config = {});

  /// Run the full Fig. 6 pipeline.  Either network in `models` may be
  /// null: a null background net skips rejection (step 2), a null dEta
  /// net skips the d_eta update (step 3) — giving the paper's "without
  /// ML" baseline when both are null.  The dEta update routes through
  /// Models::predict_deta_batch — the same batched entry point the
  /// serving layer uses — so offline localization and streaming
  /// inference share one forward path.
  MlLocalizationResult run(std::span<const recon::ComptonRing> rings,
                           const Models& models, core::Rng& rng,
                           StageTimings* timings = nullptr) const;

  /// Convenience overload over raw network pointers.
  MlLocalizationResult run(std::span<const recon::ComptonRing> rings,
                           BackgroundNet* background_net, DEtaNet* deta_net,
                           core::Rng& rng,
                           StageTimings* timings = nullptr) const;

  const MlLocalizerConfig& config() const { return config_; }

 private:
  MlLocalizerConfig config_;
};

}  // namespace adapt::pipeline
