#include "pipeline/ml_localizer.hpp"

#include "core/require.hpp"
#include "core/telemetry.hpp"
#include "core/units.hpp"
#include "loc/likelihood.hpp"

namespace adapt::pipeline {

namespace {

namespace tm = core::telemetry;

/// Stage timers shared by every MlLocalizer.  Each ScopedTimer scope
/// is ONE pass through the stage, so the telemetry histograms hold
/// per-pass samples (what Tables I/II report) while the StageTimings
/// slots keep accumulating per-trial totals for existing callers.
struct StageMetrics {
  tm::Histogram& setup_ms = tm::histogram("pipeline.setup_ms");
  tm::Histogram& bkg_nn_ms = tm::histogram("pipeline.bkg_nn_ms");
  tm::Histogram& deta_nn_ms = tm::histogram("pipeline.deta_nn_ms");
  tm::Histogram& approx_refine_ms = tm::histogram("pipeline.approx_refine_ms");
  tm::Histogram& total_ms = tm::histogram("pipeline.total_ms");
  tm::Histogram& bkg_survivors = tm::histogram("pipeline.bkg_survivors");
  tm::Counter& bkg_iterations = tm::counter("pipeline.bkg_iterations");
  tm::Counter& bkg_rings_rejected =
      tm::counter("pipeline.rings_rejected.background_net");
  tm::Counter& bkg_fallback = tm::counter("pipeline.bkg_fallback_all_rings");
  tm::Counter& deta_reassigned = tm::counter("pipeline.deta_reassigned");
};

StageMetrics& metrics() {
  static StageMetrics m;
  return m;
}

}  // namespace

MlLocalizer::MlLocalizer(const MlLocalizerConfig& config) : config_(config) {
  ADAPT_REQUIRE(config.max_background_iterations >= 0,
                "negative iteration cap");
  ADAPT_REQUIRE(config.convergence_angle_rad > 0.0,
                "convergence angle must be positive");
}

MlLocalizationResult MlLocalizer::run(std::span<const recon::ComptonRing> rings,
                                      BackgroundNet* background_net,
                                      DEtaNet* deta_net, core::Rng& rng,
                                      StageTimings* timings) const {
  return run(rings, Models{background_net, deta_net}, rng, timings);
}

MlLocalizationResult MlLocalizer::run(std::span<const recon::ComptonRing> rings,
                                      const Models& models, core::Rng& rng,
                                      StageTimings* timings) const {
  BackgroundNet* background_net = models.background;
  StageMetrics& m = metrics();
  // The timer's destructor fires on every exit path, before control
  // returns to the caller, so timings->total_ms is complete when run()
  // returns — same contract as the old explicit ms_since() calls.
  const tm::ScopedTimer total_timer(m.total_ms,
                                    timings ? &timings->total_ms : nullptr);
  MlLocalizationResult result;
  result.rings_in = rings.size();
  result.rings_kept = rings.size();

  const loc::Localizer localizer(config_.localizer);

  // --- Setup: copy the ring set we will edit (d_eta updates and
  // background removal operate on the working copy) and precompute the
  // classifier's polar-independent feature columns once — the loop
  // re-classifies every iteration but only the polar guess changes.
  std::vector<recon::ComptonRing> working;
  nn::Tensor prepared_features;
  {
    const tm::ScopedTimer t(m.setup_ms, timings ? &timings->setup_ms : nullptr);
    working.assign(rings.begin(), rings.end());
    if (background_net != nullptr) {
      prepared_features = background_net->prepare_features(working);
    }
  }

  // --- Initial (no-ML) localization: multi-start approximation plus
  // robust refinement.
  {
    const tm::ScopedTimer t(m.approx_refine_ms,
                            timings ? &timings->approx_refine_ms : nullptr);
    result.base = localizer.localize(working, rng);
  }
  if (!result.base.valid) {
    return result;
  }
  core::Vec3 s_hat = result.base.direction;
  result.direction = s_hat;
  result.valid = true;

  // --- Step 2 (Fig. 6): iterate background rejection at the current
  // polar angle against re-localization.  Classification always runs
  // on the full input set so rings wrongly dropped by an earlier, less
  // accurate estimate can be recovered.  Per the paper, this iteration
  // removes background more effectively than a single application of
  // the model at the first estimate of s-hat.
  std::vector<recon::ComptonRing> kept = working;
  if (background_net != nullptr) {
    for (int iter = 0; iter < config_.max_background_iterations; ++iter) {
      result.background_iterations = iter + 1;
      m.bkg_iterations.add();
      const double polar_deg = core::rad_to_deg(core::polar_of(s_hat));

      std::vector<std::uint8_t> is_background;
      {
        const tm::ScopedTimer t(
            m.bkg_nn_ms,
            timings ? &timings->background_inference_ms : nullptr);
        is_background =
            background_net->classify_prepared(prepared_features, polar_deg);
      }
      kept.clear();
      for (std::size_t i = 0; i < working.size(); ++i)
        if (!is_background[i]) kept.push_back(working[i]);
      m.bkg_survivors.record(static_cast<double>(kept.size()));
      if (kept.size() < 2) {
        kept = working;  // Degenerate rejection: fall back to all rings.
        m.bkg_fallback.add();
        break;
      }

      // Full re-localization (multi-start approximation + refinement)
      // on the surviving rings: when the pre-rejection estimate was
      // captured by a background mode, refinement alone cannot escape
      // it, but with the background removed the approximation re-finds
      // the true mode.
      loc::LocalizationResult step;
      {
        const tm::ScopedTimer t(m.approx_refine_ms,
                                timings ? &timings->approx_refine_ms : nullptr);
        step = localizer.localize(kept, rng);
      }
      if (!step.valid) break;

      const double moved = core::angle_between(s_hat, step.direction);
      s_hat = step.direction;
      result.direction = s_hat;
      if (moved < config_.convergence_angle_rad) {
        result.loop_converged = true;
        break;
      }
    }
  }
  result.rings_kept = kept.size();
  m.bkg_rings_rejected.add(result.rings_in - result.rings_kept);

  // --- Step 3: replace the survivors' propagated d_eta with the dEta
  // network's estimate at the final polar angle, through the same
  // batched entry point the serving layer calls (one feature Tensor,
  // one forward — bit-identical to per-ring predict() at this guess).
  if (models.deta != nullptr && !kept.empty()) {
    const double polar_deg = core::rad_to_deg(core::polar_of(s_hat));
    std::vector<double> d_eta;
    {
      const tm::ScopedTimer t(m.deta_nn_ms,
                              timings ? &timings->deta_inference_ms : nullptr);
      const std::vector<double> polar_per_ring(kept.size(), polar_deg);
      d_eta = models.predict_deta_batch(kept, polar_per_ring,
                                        config_.deta_floor, config_.deta_cap);
    }
    for (std::size_t i = 0; i < kept.size(); ++i) kept[i].d_eta = d_eta[i];
    m.deta_reassigned.add(kept.size());
  }

  // --- Step 4: final localization from the last estimate.
  {
    const tm::ScopedTimer t(m.approx_refine_ms,
                            timings ? &timings->approx_refine_ms : nullptr);
    const loc::LocalizationResult final_fit = localizer.refine(kept, s_hat);
    if (final_fit.valid) {
      result.direction = final_fit.direction;
    }
  }

  return result;
}

}  // namespace adapt::pipeline
