#include "pipeline/models.hpp"

#include <algorithm>
#include <cmath>

#include "core/checksum.hpp"
#include "core/contract.hpp"
#include "nn/activations.hpp"
#include "nn/serialize.hpp"

namespace adapt::pipeline {

BackgroundNet::BackgroundNet(nn::Sequential model,
                             nn::Standardizer standardizer,
                             PolarThresholds thresholds, bool uses_polar)
    : fp32_(std::move(model)),
      standardizer_(std::move(standardizer)),
      thresholds_(std::move(thresholds)),
      uses_polar_(uses_polar) {}

BackgroundNet::BackgroundNet(quant::QuantizedMlp model,
                             nn::Standardizer standardizer,
                             PolarThresholds thresholds, bool uses_polar)
    : int8_(std::move(model)),
      standardizer_(std::move(standardizer)),
      thresholds_(std::move(thresholds)),
      uses_polar_(uses_polar) {}

std::vector<float> BackgroundNet::logits_for_features(
    const nn::Tensor& raw_features) {
  nn::Tensor x = standardizer_.fitted() ? standardizer_.transform(raw_features)
                                        : raw_features;
  nn::Tensor out;
  if (int8_) {
    out = int8_->forward(x);
  } else {
    ADAPT_REQUIRE(fp32_.has_value(), "background net has no model");
    out = fp32_->forward(x, /*training=*/false);
  }
  ADAPT_REQUIRE(out.cols() == 1, "background net must output one logit");
  std::vector<float> logits(out.rows());
  for (std::size_t i = 0; i < logits.size(); ++i) logits[i] = out(i, 0);
  return logits;
}

std::vector<float> BackgroundNet::logits(
    std::span<const recon::ComptonRing> rings, double polar_deg_guess) {
  if (rings.empty()) return {};
  return logits_for_features(
      feature_matrix(rings, uses_polar_, polar_deg_guess));
}

nn::Tensor BackgroundNet::prepare_features(
    std::span<const recon::ComptonRing> rings) const {
  return feature_matrix(rings, uses_polar_, 0.0);
}

std::vector<float> BackgroundNet::logits_prepared(const nn::Tensor& prepared,
                                                  double polar_deg_guess) {
  if (prepared.rows() == 0) return {};
  nn::Tensor x = prepared;
  if (uses_polar_) {
    for (std::size_t r = 0; r < x.rows(); ++r)
      x(r, kBaseFeatureCount) = static_cast<float>(polar_deg_guess);
  }
  return logits_for_features(x);
}

std::vector<std::uint8_t> BackgroundNet::classify_prepared(
    const nn::Tensor& prepared, double polar_deg_guess) {
  const auto l = logits_prepared(prepared, polar_deg_guess);
  const double thr = thresholds_.logit_threshold(polar_deg_guess);
  std::vector<std::uint8_t> out(l.size());
  for (std::size_t i = 0; i < l.size(); ++i)
    out[i] = static_cast<double>(l[i]) >= thr ? 1 : 0;
  return out;
}

std::vector<float> BackgroundNet::probabilities(
    std::span<const recon::ComptonRing> rings, double polar_deg_guess) {
  auto out = logits(rings, polar_deg_guess);
  for (float& v : out) {
    v = nn::sigmoid(v);
    // sigmoid maps every finite logit into [0, 1]; anything else means
    // a NaN escaped the model (bad weights or features).
    ADAPT_CHECK_PROB(static_cast<double>(v), "background probability");
  }
  return out;
}

std::vector<std::uint8_t> BackgroundNet::classify(
    std::span<const recon::ComptonRing> rings, double polar_deg_guess) {
  const auto l = logits(rings, polar_deg_guess);
  const double thr = thresholds_.logit_threshold(polar_deg_guess);
  std::vector<std::uint8_t> out(l.size());
  for (std::size_t i = 0; i < l.size(); ++i)
    out[i] = static_cast<double>(l[i]) >= thr ? 1 : 0;
  return out;
}

std::vector<float> BackgroundNet::logits_batch(
    std::span<const recon::ComptonRing> rings,
    std::span<const double> polar_deg_per_ring) {
  ADAPT_REQUIRE(polar_deg_per_ring.size() == rings.size(),
                "per-ring polar guess count mismatch");
  if (rings.empty()) return {};
  // Without the polar feature the per-ring guesses are irrelevant and
  // the matrix is the 12-column form the model expects.
  nn::Tensor x = uses_polar_ ? feature_matrix(rings, polar_deg_per_ring)
                             : feature_matrix(rings, false, 0.0);
  return logits_for_features(x);
}

std::vector<std::uint8_t> BackgroundNet::classify_batch(
    std::span<const recon::ComptonRing> rings,
    std::span<const double> polar_deg_per_ring) {
  const auto l = logits_batch(rings, polar_deg_per_ring);
  std::vector<std::uint8_t> out(l.size());
  for (std::size_t i = 0; i < l.size(); ++i) {
    const double thr = thresholds_.logit_threshold(polar_deg_per_ring[i]);
    out[i] = static_cast<double>(l[i]) >= thr ? 1 : 0;
  }
  return out;
}

bool BackgroundNet::save(const std::string& path) {
  ADAPT_REQUIRE(fp32_.has_value(),
                "only the FP32 background net serializes directly");
  auto meta = thresholds_.to_metadata();
  meta["uses_polar"] = uses_polar_ ? 1.0 : 0.0;
  return nn::save_model(*fp32_, standardizer_, meta, path);
}

std::optional<BackgroundNet> BackgroundNet::load(const std::string& path) {
  auto saved = nn::load_model(path);
  if (!saved) return std::nullopt;
  const bool uses_polar =
      saved->metadata.count("uses_polar") == 0 ||
      saved->metadata.at("uses_polar") > 0.5;
  return BackgroundNet(std::move(saved->model), std::move(saved->standardizer),
                       PolarThresholds::from_metadata(saved->metadata),
                       uses_polar);
}

namespace {

/// Standardizer bytes folded into the model digest: a corrupted mean
/// or inverse-std poisons every feature before the first layer, so it
/// is part of the deployed state the checksum guards.
void fold_standardizer(core::Fnv1a64& h, const nn::Standardizer& s) {
  if (!s.fitted()) return;
  h.update(s.mean().data(), s.mean().size() * sizeof(float));
  h.update(s.inv_std().data(), s.inv_std().size() * sizeof(float));
}

}  // namespace

std::uint64_t BackgroundNet::weight_checksum() {
  core::Fnv1a64 h;
  const std::uint64_t model_digest =
      int8_ ? int8_->weight_checksum() : nn::weight_checksum(*fp32_);
  h.update(&model_digest, sizeof(model_digest));
  fold_standardizer(h, standardizer_);
  return h.digest();
}

std::uint64_t DEtaNet::weight_checksum() {
  core::Fnv1a64 h;
  const std::uint64_t model_digest = nn::weight_checksum(model_);
  h.update(&model_digest, sizeof(model_digest));
  fold_standardizer(h, standardizer_);
  return h.digest();
}

DEtaNet::DEtaNet(nn::Sequential model, nn::Standardizer standardizer,
                 bool uses_polar, double calibration)
    : model_(std::move(model)),
      standardizer_(std::move(standardizer)),
      uses_polar_(uses_polar),
      calibration_(calibration) {
  ADAPT_REQUIRE(calibration > 0.0, "calibration must be positive");
}

std::vector<double> DEtaNet::predict_from_features(nn::Tensor x, double floor,
                                                   double cap) {
  if (standardizer_.fitted()) standardizer_.transform_in_place(x);
  const nn::Tensor out = model_.forward(x, /*training=*/false);
  ADAPT_REQUIRE(out.cols() == 1, "dEta net must output one value");
  std::vector<double> d(out.rows());
  for (std::size_t i = 0; i < d.size(); ++i)
    d[i] = std::clamp(
        calibration_ * std::exp(static_cast<double>(out(i, 0))), floor, cap);
  return d;
}

std::vector<double> DEtaNet::predict(std::span<const recon::ComptonRing> rings,
                                     double polar_deg_guess, double floor,
                                     double cap) {
  ADAPT_REQUIRE(floor > 0.0 && cap > floor, "invalid d_eta bounds");
  if (rings.empty()) return {};
  return predict_from_features(
      feature_matrix(rings, uses_polar_, polar_deg_guess), floor, cap);
}

std::vector<double> DEtaNet::predict_for_features(nn::Tensor raw_features,
                                                  double floor, double cap) {
  ADAPT_REQUIRE(floor > 0.0 && cap > floor, "invalid d_eta bounds");
  if (raw_features.rows() == 0) return {};
  return predict_from_features(std::move(raw_features), floor, cap);
}

std::vector<double> DEtaNet::predict_batch(
    std::span<const recon::ComptonRing> rings,
    std::span<const double> polar_deg_per_ring, double floor, double cap) {
  ADAPT_REQUIRE(floor > 0.0 && cap > floor, "invalid d_eta bounds");
  ADAPT_REQUIRE(polar_deg_per_ring.size() == rings.size(),
                "per-ring polar guess count mismatch");
  if (rings.empty()) return {};
  nn::Tensor x = uses_polar_ ? feature_matrix(rings, polar_deg_per_ring)
                             : feature_matrix(rings, false, 0.0);
  return predict_from_features(std::move(x), floor, cap);
}

bool DEtaNet::save(const std::string& path) {
  std::map<std::string, double> meta;
  meta["uses_polar"] = uses_polar_ ? 1.0 : 0.0;
  meta["calibration"] = calibration_;
  return nn::save_model(model_, standardizer_, meta, path);
}

std::optional<DEtaNet> DEtaNet::load(const std::string& path) {
  auto saved = nn::load_model(path);
  if (!saved) return std::nullopt;
  const bool uses_polar =
      saved->metadata.count("uses_polar") == 0 ||
      saved->metadata.at("uses_polar") > 0.5;
  const double calibration = saved->metadata.count("calibration")
                                 ? saved->metadata.at("calibration")
                                 : 1.0;
  return DEtaNet(std::move(saved->model), std::move(saved->standardizer),
                 uses_polar, calibration);
}

std::vector<std::uint8_t> Models::classify_background_batch(
    std::span<const recon::ComptonRing> rings,
    std::span<const double> polar_deg_per_ring) const {
  ADAPT_REQUIRE(polar_deg_per_ring.size() == rings.size(),
                "per-ring polar guess count mismatch");
  if (background == nullptr)
    return std::vector<std::uint8_t>(rings.size(), 0);
  return background->classify_batch(rings, polar_deg_per_ring);
}

std::vector<double> Models::predict_deta_batch(
    std::span<const recon::ComptonRing> rings,
    std::span<const double> polar_deg_per_ring, double floor,
    double cap) const {
  ADAPT_REQUIRE(floor > 0.0 && cap > floor, "invalid d_eta bounds");
  ADAPT_REQUIRE(polar_deg_per_ring.size() == rings.size(),
                "per-ring polar guess count mismatch");
  if (deta == nullptr) {
    // Analytic passthrough: the propagated ring width, bounded the same
    // way the network prediction would be.
    std::vector<double> d(rings.size());
    for (std::size_t i = 0; i < rings.size(); ++i)
      d[i] = std::clamp(rings[i].d_eta, floor, cap);
    return d;
  }
  return deta->predict_batch(rings, polar_deg_per_ring, floor, cap);
}

Models::BatchInference Models::infer_batch(
    std::span<const recon::ComptonRing> rings,
    std::span<const double> polar_deg_per_ring, double floor, double cap,
    bool allow_deta) const {
  ADAPT_REQUIRE(floor > 0.0 && cap > floor, "invalid d_eta bounds");
  ADAPT_REQUIRE(polar_deg_per_ring.size() == rings.size(),
                "per-ring polar guess count mismatch");
  BatchInference out;
  if (rings.empty()) return out;

  // Assemble each feature layout at most once per flush, shared
  // between the networks.  Two layouts can coexist (a polar-aware
  // background net beside a polar-free dEta net); each is built
  // lazily on first use with exactly the same feature_matrix calls
  // the individual *_batch entry points make, which is what keeps
  // this path bit-identical to them.
  nn::Tensor with_polar;
  nn::Tensor without_polar;
  const auto features_for = [&](bool uses_polar) -> const nn::Tensor& {
    if (uses_polar) {
      if (with_polar.rows() == 0)
        with_polar = feature_matrix(rings, polar_deg_per_ring);
      return with_polar;
    }
    if (without_polar.rows() == 0)
      without_polar = feature_matrix(rings, false, 0.0);
    return without_polar;
  };

  if (background != nullptr) {
    const std::vector<float> logits =
        background->logits_for_features(features_for(background->uses_polar()));
    out.is_background.resize(logits.size());
    for (std::size_t i = 0; i < logits.size(); ++i) {
      const double thr =
          background->thresholds().logit_threshold(polar_deg_per_ring[i]);
      out.is_background[i] =
          static_cast<double>(logits[i]) >= thr ? 1 : 0;
    }
  } else {
    out.is_background.assign(rings.size(), 0);
  }

  if (deta != nullptr && allow_deta) {
    out.d_eta = deta->predict_for_features(features_for(deta->uses_polar()),
                                           floor, cap);
    out.used_deta_net = true;
  } else {
    out.d_eta.resize(rings.size());
    for (std::size_t i = 0; i < rings.size(); ++i)
      out.d_eta[i] = std::clamp(rings[i].d_eta, floor, cap);
  }
  return out;
}

}  // namespace adapt::pipeline
