#pragma once

/// \file thresholds.hpp
/// Per-polar-angle-bin classification thresholds (paper Sec. III):
/// "we divided the range of input polar angles into ten-degree bins
/// and chose an output threshold for each bin that minimized training
/// loss; the threshold is then selected dynamically at inference time
/// based on the input polar angle."
///
/// Thresholds are stored on the *logit* scale — the sigmoid is
/// bijective, so thresholding the logit is equivalent and lets the
/// FPGA kernel skip the sigmoid entirely (paper Sec. V).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace adapt::pipeline {

class PolarThresholds {
 public:
  static constexpr int kBinWidthDeg = 10;
  static constexpr int kNumBins = 9;  ///< 0-10, ..., 80-90 degrees.

  PolarThresholds();

  /// Bin index for a polar angle in degrees (clamped to [0, 90)).
  static int bin_of(double polar_deg);

  double logit_threshold(double polar_deg) const;
  void set_logit_threshold(int bin, double threshold);

  /// Fit: for each bin, pick the logit threshold minimizing the 0/1
  /// classification error of (logit, label, polar) triples falling in
  /// that bin.  Bins with no data keep the neutral threshold 0
  /// (probability 0.5).
  void fit(const std::vector<float>& logits,
           const std::vector<float>& labels,
           const std::vector<double>& polar_degs);

  /// Round-trip through model metadata ("polar_thr_<bin>").
  std::map<std::string, double> to_metadata() const;
  static PolarThresholds from_metadata(
      const std::map<std::string, double>& metadata);

 private:
  std::vector<double> thresholds_;  ///< Logit scale, one per bin.
};

}  // namespace adapt::pipeline
