#pragma once

/// \file features.hpp
/// The networks' input features (paper Sec. III, "Input Features").
///
/// Twelve features come from the Compton ring's event: the total
/// deposited energy; position (x, y, z) and deposited energy of each
/// of the first two hits; and the quoted uncertainties of the three
/// energy measurements (total + two deposits).  A thirteenth feature
/// is a guess of the source's polar angle — ADAPT's field of view is
/// bounded by the Earth, and the paper shows (Fig. 7) that a roughly
/// correct angle materially improves the networks at the extremes.
/// The pipeline supplies its current localization estimate as that
/// guess (Fig. 6).

#include <span>
#include <vector>

#include "nn/tensor.hpp"
#include "recon/ring.hpp"

namespace adapt::pipeline {

/// Number of base (non-polar) features.
inline constexpr std::size_t kBaseFeatureCount = 12;
/// Full feature count including the polar-angle guess.
inline constexpr std::size_t kFeatureCount = 13;

/// Fill one feature row (without polar angle) from a ring.
void write_base_features(const recon::ComptonRing& ring, float* row);

/// Feature matrix for a batch of rings.  When `include_polar` is true
/// the 13th column is `polar_deg_guess` for every row (the pipeline's
/// single current estimate of the source polar angle, in degrees).
nn::Tensor feature_matrix(std::span<const recon::ComptonRing> rings,
                          bool include_polar, double polar_deg_guess);

/// Same, but with an independent polar guess per ring (training uses
/// the true per-burst angle).
nn::Tensor feature_matrix(std::span<const recon::ComptonRing> rings,
                          std::span<const double> polar_deg_per_ring);

/// Classification target: 1.0 for background rings, 0.0 for GRB rings.
float background_label(const recon::ComptonRing& ring);

/// Regression target for the dEta network: the natural log of the
/// ring's *actual* eta error against the true source direction,
/// floored/capped so the log stays bounded (the paper's network
/// regresses ln(d_eta) because the error spans orders of magnitude).
float deta_target(const recon::ComptonRing& ring,
                  const core::Vec3& true_source,
                  double floor = 1e-4, double cap = 2.0);

}  // namespace adapt::pipeline
