#include <gtest/gtest.h>

#include <string>

#include "fault/matrix.hpp"

namespace adapt::fault {
namespace {

// One tiny scenario keeps the 5-row matrix cheap enough for ctest
// while still exercising every injection surface against real
// scenario rings.
scenario::ScenarioConfig tiny_scenario() {
  scenario::ScenarioConfig cfg;
  cfg.name = "matrix_tiny";
  cfg.duration_s = 2.0;
  cfg.background_rate_scale = 0.05;
  scenario::BurstSpec burst;
  burst.t_start = 0.3;
  burst.fluence = 4.0;
  burst.polar_deg = 25.0;
  burst.azimuth_deg = 40.0;
  cfg.bursts.push_back(burst);
  return cfg;
}

TEST(MatrixRowNames, RoundTrip) {
  EXPECT_STREQ(to_string(MatrixRow::kNone), "none");
  EXPECT_STREQ(to_string(MatrixRow::kEvents), "events");
  EXPECT_STREQ(to_string(MatrixRow::kForward), "forward");
  EXPECT_STREQ(to_string(MatrixRow::kSeu), "seu");
  EXPECT_STREQ(to_string(MatrixRow::kModelBytes), "model_bytes");
}

TEST(FaultMatrix, AllCellsPassWithBalancedLedgers) {
  MatrixSpec spec;
  spec.seed = 2026;
  spec.scenarios.push_back(tiny_scenario());

  const MatrixResult result = run_matrix(spec);
  EXPECT_TRUE(result.ok) << result.report;
  ASSERT_EQ(result.cells.size(), kMatrixRowCount);
  for (const CellResult& cell : result.cells) {
    EXPECT_TRUE(cell.ok) << cell.report;
    EXPECT_TRUE(cell.ledger.balanced()) << cell.report;
    EXPECT_EQ(cell.scenario, "matrix_tiny");
    EXPECT_TRUE(cell.errors.empty()) << cell.errors;
    // Every cell report is embedded in the matrix report verbatim.
    EXPECT_NE(result.report.find(cell.report), std::string::npos);
  }
  // Fault rows actually injected something; the clean row did not.
  EXPECT_EQ(result.cells[0].row, MatrixRow::kNone);
  EXPECT_TRUE(result.cells[0].ledger.balanced());
  for (std::size_t i = 1; i < result.cells.size(); ++i) {
    std::uint64_t injected = 0;
    for (const auto& n : result.cells[i].ledger.injected) injected += n;
    EXPECT_GT(injected, 0u) << to_string(result.cells[i].row);
  }
}

TEST(FaultMatrix, ReportIsByteIdenticalAcrossRuns) {
  MatrixSpec spec;
  spec.seed = 7;
  spec.scenarios.push_back(tiny_scenario());

  const MatrixResult a = run_matrix(spec);
  const MatrixResult b = run_matrix(spec);
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.report, b.report);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].report, b.cells[i].report);
    EXPECT_EQ(a.cells[i].seed, b.cells[i].seed);
  }
}

TEST(FaultMatrix, OnlyRowRestrictsTheMatrix) {
  MatrixSpec spec;
  spec.seed = 11;
  spec.scenarios.push_back(tiny_scenario());
  spec.only_row = "events";

  const MatrixResult result = run_matrix(spec);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].row, MatrixRow::kEvents);
  EXPECT_TRUE(result.cells[0].ok) << result.cells[0].report;
}

TEST(FaultMatrix, CleanRowReportCarriesAlertAndStreamLines) {
  MatrixSpec spec;
  spec.seed = 2026;
  spec.scenarios.push_back(tiny_scenario());
  spec.only_row = "none";

  const MatrixResult result = run_matrix(spec);
  ASSERT_EQ(result.cells.size(), 1u);
  const std::string& report = result.cells[0].report;
  EXPECT_NE(report.find("sim: "), std::string::npos) << report;
  EXPECT_NE(report.find("trigger: "), std::string::npos) << report;
  EXPECT_NE(report.find("burst 1:"), std::string::npos) << report;
  EXPECT_NE(report.find("stream 1:"), std::string::npos) << report;
  EXPECT_NE(report.find("alert="), std::string::npos) << report;
  EXPECT_NE(report.find("ledger invariant: balanced"), std::string::npos)
      << report;
  EXPECT_NE(report.find("cell status: ok"), std::string::npos) << report;
}

}  // namespace
}  // namespace adapt::fault
