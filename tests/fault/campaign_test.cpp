#include "fault/campaign.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <string>

namespace adapt::fault {
namespace {

// A scaled-down campaign that still injects every fault class: small
// event stream, a couple of rounds per forward/state/model phase, and
// a watchdog tuned fast so the single stall round resolves quickly.
CampaignSpec small_spec(std::uint64_t seed, const std::string& scratch) {
  CampaignSpec spec;
  spec.seed = seed;
  spec.events = 400;
  spec.transient_rounds = 3;
  spec.persistent_rounds = 2;
  spec.stall_rounds = 1;
  spec.stall_duration = std::chrono::milliseconds(300);
  spec.weight_bit_rounds = 2;
  spec.events_per_degraded_window = 3;
  spec.model_bytes_rounds = 3;
  spec.scratch_dir = scratch;
  spec.supervisor.serve.max_batch = 8;
  spec.supervisor.watchdog_interval = std::chrono::milliseconds(5);
  spec.supervisor.stall_timeout = std::chrono::milliseconds(80);
  return spec;
}

TEST(Campaign, InjectsEveryClassBalancesAndEndsHealthy) {
  const CampaignResult result =
      run_campaign(small_spec(101, "/tmp/adapt_campaign_test_a"));
  EXPECT_TRUE(result.ok) << result.errors;
  EXPECT_TRUE(result.ledger.balanced()) << result.ledger.format();
  EXPECT_EQ(result.ledger.unaccounted(), 0u);
  for (std::size_t c = 0; c < kFaultClassCount; ++c) {
    EXPECT_GT(result.ledger.injected[c], 0u)
        << "class " << to_string(static_cast<FaultClass>(c))
        << " never injected";
  }
  EXPECT_EQ(result.supervisor.state, serve::HealthState::kHealthy);
  // Forward-phase arithmetic is exact for a seeded spec: each transient
  // round retries once; each persistent round burns the full retry
  // budget then fails over.
  EXPECT_EQ(result.supervisor.transient_recovered, 3u);
  EXPECT_EQ(result.supervisor.watchdog_restarts, 1u);
  EXPECT_EQ(result.supervisor.checksum_failures, 2u);
  EXPECT_EQ(result.supervisor.restores, 2u);
  EXPECT_EQ(result.supervisor.degraded_entered, 2u);
  EXPECT_EQ(result.supervisor.recovering_entered, 2u);
  EXPECT_EQ(result.supervisor.healthy_entered, 2u);
  EXPECT_GT(result.delivered_clean, 0u);
}

TEST(Campaign, TwoRunsSameSeedProduceBitIdenticalLedgers) {
  // The acceptance criterion for the chaos gate: same seed, same spec
  // (scratch location aside) => byte-identical report.
  const CampaignResult first =
      run_campaign(small_spec(202, "/tmp/adapt_campaign_test_b1"));
  const CampaignResult second =
      run_campaign(small_spec(202, "/tmp/adapt_campaign_test_b2"));
  ASSERT_TRUE(first.ok) << first.errors;
  ASSERT_TRUE(second.ok) << second.errors;
  EXPECT_EQ(first.ledger, second.ledger);
  EXPECT_EQ(first.report, second.report);
  EXPECT_EQ(first.delivered_clean, second.delivered_clean);
  EXPECT_EQ(first.supervisor.delivered, second.supervisor.delivered);
  EXPECT_EQ(first.supervisor.fallback_batches,
            second.supervisor.fallback_batches);
  EXPECT_EQ(first.supervisor.retries, second.supervisor.retries);
}

TEST(Campaign, DisabledCampaignInjectsNothingAndStaysClean) {
  CampaignSpec spec = small_spec(303, "/tmp/adapt_campaign_test_c");
  spec.enabled = false;
  const CampaignResult result = run_campaign(spec);
  EXPECT_TRUE(result.ok) << result.errors;
  EXPECT_EQ(result.ledger.total_injected(), 0u);
  EXPECT_TRUE(result.ledger.balanced());
  EXPECT_EQ(result.supervisor.input_rejected, 0u);
  EXPECT_EQ(result.supervisor.queue_drops, 0u);
  EXPECT_EQ(result.supervisor.duplicates_suppressed, 0u);
  EXPECT_EQ(result.supervisor.retries, 0u);
  EXPECT_EQ(result.supervisor.fallback_batches, 0u);
  EXPECT_EQ(result.supervisor.checksum_failures, 0u);
  EXPECT_EQ(result.supervisor.watchdog_restarts, 0u);
  EXPECT_EQ(result.supervisor.delivered_fallback, 0u);
  EXPECT_EQ(result.delivered_clean, result.supervisor.delivered);
  EXPECT_EQ(result.supervisor.state, serve::HealthState::kHealthy);
}

}  // namespace
}  // namespace adapt::fault
