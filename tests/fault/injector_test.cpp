#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "nn/serialize.hpp"
#include "serve/supervisor.hpp"
#include "serve/synthetic_models.hpp"

namespace adapt::fault {
namespace {

recon::ComptonRing make_ring(core::Rng& rng) {
  return serve::synthetic_ring(rng);
}

TEST(Injector, SameSeedSameDecisionStreamAndLedger) {
  Injector a(42), b(42);
  core::Rng ring_a(7), ring_b(7);
  std::vector<int> decisions_a, decisions_b;
  for (int i = 0; i < 500; ++i) {
    recon::ComptonRing ra = make_ring(ring_a);
    recon::ComptonRing rb = make_ring(ring_b);
    decisions_a.push_back(a.maybe_corrupt_ring(ra, 0.3) ? 1 : 0);
    decisions_b.push_back(b.maybe_corrupt_ring(rb, 0.3) ? 1 : 0);
    decisions_a.push_back(static_cast<int>(a.next_queue_fault(0.1, 0.1)));
    decisions_b.push_back(static_cast<int>(b.next_queue_fault(0.1, 0.1)));
  }
  EXPECT_EQ(decisions_a, decisions_b);
  EXPECT_EQ(a.ledger(), b.ledger());
  EXPECT_GT(a.ledger().total_injected(), 0u);
}

TEST(Injector, DisabledInjectorCommitsNothing) {
  Injector inj(42, /*enabled=*/false);
  core::Rng rng(7);
  const recon::ComptonRing original = make_ring(rng);
  recon::ComptonRing ring = original;

  EXPECT_FALSE(inj.maybe_corrupt_ring(ring, 1.0));
  EXPECT_DOUBLE_EQ(ring.eta, original.eta);
  EXPECT_DOUBLE_EQ(ring.e_total, original.e_total);
  EXPECT_DOUBLE_EQ(ring.hit1.energy, original.hit1.energy);
  EXPECT_DOUBLE_EQ(ring.axis.x, original.axis.x);

  EXPECT_EQ(inj.next_queue_fault(1.0, 0.0), serve::QueueFault::kNone);
  EXPECT_EQ(inj.next_queue_fault(0.0, 1.0), serve::QueueFault::kNone);

  const std::string bytes = "serialized model bytes";
  EXPECT_EQ(inj.garble_bytes(bytes), bytes);

  inj.arm_transient(3);
  inj.arm_stall(std::chrono::milliseconds(1000));
  EXPECT_NO_THROW(inj.on_forward_attempt(8));

  EXPECT_EQ(inj.ledger().total_injected(), 0u);
  EXPECT_TRUE(inj.ledger().balanced());
}

TEST(Injector, CorruptedRingIsNeverAdmissible) {
  // Every corruption kind must violate ingress validation, otherwise a
  // ring-field injection could slip through undetected and unbalance
  // the ledger.
  Injector inj(9);
  core::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    recon::ComptonRing ring = make_ring(rng);
    ASSERT_TRUE(serve::Supervisor::ring_admissible(ring, 30.0));
    ASSERT_TRUE(inj.maybe_corrupt_ring(ring, 1.0));
    EXPECT_FALSE(serve::Supervisor::ring_admissible(ring, 30.0)) << "i=" << i;
  }
  EXPECT_EQ(inj.ledger().injected[static_cast<std::size_t>(
                FaultClass::kRingField)],
            200u);
}

TEST(Injector, GarbledModelBytesAlwaysRejectedByLoader) {
  const std::string path = "/tmp/adaptml_injector_garble_test.adnn";
  pipeline::DEtaNet net = serve::synthetic_deta_net(5);
  ASSERT_TRUE(net.save(path));
  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_TRUE(nn::load_model(path).has_value());

  Injector inj(17);
  for (int i = 0; i < 8; ++i) {
    const std::string garbled = inj.garble_bytes(pristine);
    ASSERT_NE(garbled, pristine) << "i=" << i;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(garbled.data(), static_cast<std::streamsize>(garbled.size()));
    out.close();
    EXPECT_FALSE(nn::load_model(path).has_value()) << "i=" << i;
  }
  EXPECT_EQ(inj.ledger().injected[static_cast<std::size_t>(
                FaultClass::kModelBytes)],
            8u);
  std::remove(path.c_str());
}

TEST(Injector, Int8BitFlipChangesChecksumAndFlipBackRestoresIt) {
  pipeline::BackgroundNet net = serve::synthetic_background_net_int8(21);
  ASSERT_NE(net.int8_model(), nullptr);
  const std::uint64_t pristine = net.weight_checksum();

  Injector inj(3);
  const Injector::BitFlip flip = inj.flip_int8_weight_bit(*net.int8_model());
  EXPECT_NE(net.weight_checksum(), pristine);

  Injector::flip_back(*net.int8_model(), flip);
  EXPECT_EQ(net.weight_checksum(), pristine);
  EXPECT_EQ(inj.ledger().injected[static_cast<std::size_t>(
                FaultClass::kWeightBit)],
            1u);
}

TEST(Injector, Fp32CorruptionChangesChecksumAndSnapshotRestoresIt) {
  pipeline::DEtaNet net = serve::synthetic_deta_net(22);
  const std::uint64_t pristine = net.weight_checksum();
  const auto snapshot = net.model()->snapshot_weights();

  Injector inj(4);
  inj.corrupt_fp32_weight(*net.model());
  EXPECT_NE(net.weight_checksum(), pristine);

  net.model()->restore_weights(snapshot);
  EXPECT_EQ(net.weight_checksum(), pristine);
}

TEST(Injector, ArmedFailuresThrowExactlyAsArmed) {
  Injector inj(8);
  inj.arm_transient(2);
  EXPECT_THROW(inj.on_forward_attempt(4), InjectedFault);
  EXPECT_THROW(inj.on_forward_attempt(4), InjectedFault);
  EXPECT_NO_THROW(inj.on_forward_attempt(4));

  const auto transient =
      static_cast<std::size_t>(FaultClass::kForwardTransient);
  EXPECT_EQ(inj.ledger().injected[transient], 1u);
  EXPECT_EQ(inj.ledger().unaccounted(), 1u);
  EXPECT_FALSE(inj.ledger().balanced());
  inj.count_tolerated(FaultClass::kForwardTransient);
  EXPECT_EQ(inj.ledger().unaccounted(), 0u);
  EXPECT_TRUE(inj.ledger().balanced());
}

TEST(Injector, LedgerFormatIsDeterministicAndNamesEveryClass) {
  Injector a(33), b(33);
  core::Rng ra(1), rb(1);
  for (int i = 0; i < 50; ++i) {
    recon::ComptonRing r1 = make_ring(ra), r2 = make_ring(rb);
    a.maybe_corrupt_ring(r1, 0.5);
    b.maybe_corrupt_ring(r2, 0.5);
  }
  EXPECT_EQ(a.ledger().format(), b.ledger().format());
  const std::string table = a.ledger().format();
  for (std::size_t c = 0; c < kFaultClassCount; ++c) {
    EXPECT_NE(table.find(to_string(static_cast<FaultClass>(c))),
              std::string::npos)
        << "missing class " << c;
  }
}

}  // namespace
}  // namespace adapt::fault
