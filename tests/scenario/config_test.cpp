#include <gtest/gtest.h>

#include <string>

#include "core/cli.hpp"
#include "scenario/config.hpp"

namespace adapt::scenario {
namespace {

// Checked-in fixtures live in the source tree.
const std::string kFixtures =
    std::string(ADAPT_SOURCE_DIR) + "/tests/scenario/";

ScenarioConfig parse(const std::string& text) {
  return parse_scenario(text, "test.scn");
}

void expect_rejected(const std::string& text, const std::string& fragment) {
  try {
    parse(text);
    FAIL() << "config accepted; expected CliError mentioning '" << fragment
           << "'";
  } catch (const core::CliError& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(ScenarioConfigParse, FullConfigRoundTrips) {
  const ScenarioConfig cfg = parse(R"(# hostile sky
[scenario]
name = demo-1
duration_s = 5.0
alert_radius_deg = 12.5
pileup_latency_s = 0.0001

[background]
rate_scale = 0.4

[burst]
t_start = 0.5
fluence = 4.0
polar_deg = 25.0
azimuth_deg = 40.0
rise_s = 0.02
decay_s = 0.2
e_peak_mev = 0.35

[burst]
t_start = 2.5
fluence = 2.0

[flare_train]
t_first = 0.2
period_s = 1.0
pulses = 3
pulse_fluence = 0.6
pulse_width_s = 0.08
polar_deg = 70.0
azimuth_deg = 120.0
e_peak_mev = 0.08

[surge]
t_start = 1.0
t_end = 2.0
factor = 3.0

[occultation]
t_start = 3.6
t_end = 4.4
)");
  EXPECT_EQ(cfg.name, "demo-1");
  EXPECT_EQ(cfg.duration_s, 5.0);
  EXPECT_EQ(cfg.alert_radius_deg, 12.5);
  EXPECT_EQ(cfg.pileup_latency_s, 0.0001);
  EXPECT_EQ(cfg.background_rate_scale, 0.4);
  ASSERT_EQ(cfg.bursts.size(), 2u);
  EXPECT_EQ(cfg.bursts[0].t_start, 0.5);
  EXPECT_EQ(cfg.bursts[0].fluence, 4.0);
  EXPECT_EQ(cfg.bursts[0].polar_deg, 25.0);
  EXPECT_EQ(cfg.bursts[0].azimuth_deg, 40.0);
  EXPECT_EQ(cfg.bursts[0].rise_s, 0.02);
  EXPECT_EQ(cfg.bursts[0].decay_s, 0.2);
  EXPECT_EQ(cfg.bursts[0].e_peak_mev, 0.35);
  // Unset keys keep their documented defaults.
  EXPECT_EQ(cfg.bursts[1].polar_deg, 30.0);
  ASSERT_EQ(cfg.flare_trains.size(), 1u);
  EXPECT_EQ(cfg.flare_trains[0].pulses, 3u);
  EXPECT_EQ(cfg.flare_trains[0].e_peak_mev, 0.08);
  ASSERT_EQ(cfg.surges.size(), 1u);
  EXPECT_EQ(cfg.surges[0].factor, 3.0);
  ASSERT_EQ(cfg.occultations.size(), 1u);
  EXPECT_EQ(cfg.occultations[0].t_end, 4.4);
}

TEST(ScenarioConfigParse, MinimalConfigUsesDefaults) {
  const ScenarioConfig cfg = parse(
      "[scenario]\nname = tiny\n\n[burst]\nt_start = 0.5\n");
  EXPECT_EQ(cfg.duration_s, 4.0);
  EXPECT_EQ(cfg.background_rate_scale, 1.0);
  ASSERT_EQ(cfg.bursts.size(), 1u);
  EXPECT_EQ(cfg.bursts[0].fluence, 1.0);
}

TEST(ScenarioConfigParse, RejectsUnknownSection) {
  expect_rejected("[scenario]\nname = x\n\n[bursts]\nt_start = 0\n",
                  "unknown section");
}

TEST(ScenarioConfigParse, RejectsUnknownKey) {
  expect_rejected(
      "[scenario]\nname = x\nflux = 1.0\n\n[burst]\nt_start = 0\n",
      "unknown key");
}

TEST(ScenarioConfigParse, RejectsDuplicateKey) {
  expect_rejected(
      "[scenario]\nname = x\nduration_s = 2\nduration_s = 3\n"
      "\n[burst]\nt_start = 0\n",
      "duplicate key");
}

TEST(ScenarioConfigParse, RejectsNegativeFluence) {
  expect_rejected(
      "[scenario]\nname = x\n\n[burst]\nt_start = 0\nfluence = -2\n",
      "fluence");
}

TEST(ScenarioConfigParse, RejectsInvertedSurgeWindow) {
  expect_rejected(
      "[scenario]\nname = x\n\n[burst]\nt_start = 0\n"
      "\n[surge]\nt_start = 2.0\nt_end = 1.0\nfactor = 2\n",
      "t_end");
}

TEST(ScenarioConfigParse, RejectsInvertedOccultationWindow) {
  expect_rejected(
      "[scenario]\nname = x\n\n[burst]\nt_start = 0\n"
      "\n[occultation]\nt_start = 3.0\nt_end = 3.0\n",
      "t_end");
}

TEST(ScenarioConfigParse, RejectsNonFiniteRate) {
  expect_rejected(
      "[scenario]\nname = x\n\n[background]\nrate_scale = nan\n"
      "\n[burst]\nt_start = 0\n",
      "rate_scale");
  expect_rejected(
      "[scenario]\nname = x\n\n[background]\nrate_scale = inf\n"
      "\n[burst]\nt_start = 0\n",
      "rate_scale");
}

TEST(ScenarioConfigParse, RejectsMissingName) {
  expect_rejected("[scenario]\nduration_s = 2\n\n[burst]\nt_start = 0\n",
                  "name");
}

TEST(ScenarioConfigParse, RejectsConfigWithoutBurst) {
  expect_rejected("[scenario]\nname = x\nduration_s = 2\n", "burst");
}

TEST(ScenarioConfigParse, RejectsBurstWindowPastDuration) {
  // Emission window is 1 s; t_start 3.5 overruns a 4 s campaign.
  expect_rejected(
      "[scenario]\nname = x\nduration_s = 4\n\n[burst]\nt_start = 3.5\n",
      "duration");
}

TEST(ScenarioConfigParse, RejectsPolarOutOfRange) {
  expect_rejected(
      "[scenario]\nname = x\n\n[burst]\nt_start = 0\npolar_deg = 120\n",
      "polar_deg");
}

TEST(ScenarioConfigParse, RejectsMalformedNumber) {
  expect_rejected(
      "[scenario]\nname = x\nduration_s = fast\n\n[burst]\nt_start = 0\n",
      "duration_s");
}

TEST(ScenarioConfigParse, RejectsKeyOutsideAnySection) {
  expect_rejected("name = x\n\n[burst]\nt_start = 0\n", "section");
}

TEST(ScenarioConfigFiles, AllCheckedInScenariosLoad) {
  for (const char* name :
       {"multi_burst", "flare_train", "surge", "occultation",
        "pileup_storm"}) {
    const ScenarioConfig cfg =
        load_scenario_file(kFixtures + "configs/" + name + ".scn");
    EXPECT_EQ(cfg.name, name);
    EXPECT_FALSE(cfg.bursts.empty()) << name;
  }
}

TEST(ScenarioConfigFiles, AllMalformedFixturesThrowCliError) {
  for (const char* name :
       {"unknown_key", "negative_fluence", "inverted_window",
        "nonfinite_rate", "duplicate_key", "no_burst"}) {
    EXPECT_THROW(load_scenario_file(kFixtures + "malformed/" + name + ".scn"),
                 core::CliError)
        << name;
  }
}

TEST(ScenarioConfigFiles, MissingFileThrowsCliError) {
  EXPECT_THROW(load_scenario_file(kFixtures + "configs/does_not_exist.scn"),
               core::CliError);
}

}  // namespace
}  // namespace adapt::scenario
