#include <gtest/gtest.h>

#include <cstdint>

#include "scenario/engine.hpp"

namespace adapt::scenario {
namespace {

// A deliberately small campaign so each simulate_scenario call stays
// cheap: 2 s at 5% of the paper background with one bright burst.
ScenarioConfig tiny_config() {
  ScenarioConfig cfg;
  cfg.name = "tiny";
  cfg.duration_s = 2.0;
  cfg.background_rate_scale = 0.05;
  BurstSpec burst;
  burst.t_start = 0.3;
  burst.fluence = 4.0;
  burst.polar_deg = 25.0;
  burst.azimuth_deg = 40.0;
  cfg.bursts.push_back(burst);
  return cfg;
}

std::uint64_t component_total(const ScenarioData& data) {
  std::uint64_t total = data.background_events + data.flare_events +
                        data.surge_events;
  for (const BurstTruth& burst : data.bursts) total += burst.events;
  return total;
}

TEST(ScenarioEngine, BitIdenticalAcrossRuns) {
  const ScenarioConfig cfg = tiny_config();
  const ScenarioData a = simulate_scenario(cfg, 2026);
  const ScenarioData b = simulate_scenario(cfg, 2026);

  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time_s, b.events[i].time_s);
    EXPECT_EQ(a.events[i].origin, b.events[i].origin);
    EXPECT_EQ(a.events[i].hits.size(), b.events[i].hits.size());
  }
  ASSERT_EQ(a.rings.size(), b.rings.size());
  ASSERT_EQ(a.ring_times.size(), b.ring_times.size());
  for (std::size_t i = 0; i < a.rings.size(); ++i) {
    EXPECT_EQ(a.ring_times[i], b.ring_times[i]);
    EXPECT_EQ(a.rings[i].eta, b.rings[i].eta);
    EXPECT_EQ(a.rings[i].axis.x, b.rings[i].axis.x);
  }
  EXPECT_EQ(a.background_rate_hz, b.background_rate_hz);
  EXPECT_EQ(a.background_events, b.background_events);
  ASSERT_EQ(a.bursts.size(), b.bursts.size());
  EXPECT_EQ(a.bursts[0].events, b.bursts[0].events);
  EXPECT_EQ(a.bursts[0].rings, b.bursts[0].rings);
}

TEST(ScenarioEngine, SeedChangesRealization) {
  const ScenarioConfig cfg = tiny_config();
  const ScenarioData a = simulate_scenario(cfg, 1);
  const ScenarioData b = simulate_scenario(cfg, 2);
  // Two independent Poisson realizations agreeing event-for-event is
  // astronomically unlikely; count equality alone could collide, so
  // compare the first arrival times too.
  ASSERT_GT(a.events.size(), 1u);
  const bool identical = a.events.size() == b.events.size() &&
                         a.events[0].time_s == b.events[0].time_s &&
                         a.events[1].time_s == b.events[1].time_s;
  EXPECT_FALSE(identical);
}

TEST(ScenarioEngine, EventAccountingConserved) {
  ScenarioConfig cfg = tiny_config();
  cfg.duration_s = 3.0;
  cfg.pileup_latency_s = 5e-5;
  FlareTrainSpec flare;
  flare.t_first = 1.4;
  flare.period_s = 0.6;
  flare.pulses = 2;
  flare.pulse_fluence = 0.3;
  cfg.flare_trains.push_back(flare);
  SurgeSpec surge;
  surge.t_start = 2.2;
  surge.t_end = 2.8;
  surge.factor = 4.0;
  cfg.surges.push_back(surge);
  OccultationSpec occ;
  occ.t_start = 2.8;
  occ.t_end = 3.0;
  cfg.occultations.push_back(occ);

  const ScenarioData data = simulate_scenario(cfg, 7);
  EXPECT_GT(data.flare_events, 0u);
  EXPECT_GT(data.surge_events, 0u);
  // Every generated event is either on the final timeline, dropped by
  // an occultation window, or absorbed into a pileup anchor.
  EXPECT_EQ(data.events.size() + data.occulted_events + data.piled_up_events,
            component_total(data));
  // Flare pulses are truth-tagged background.
  std::uint64_t grb_tagged = 0;
  for (const auto& event : data.events)
    if (event.origin == detector::Origin::kGrb) ++grb_tagged;
  EXPECT_LE(grb_tagged, data.bursts[0].events);
}

TEST(ScenarioEngine, OccultationDropsExactlyTheDeadWindow) {
  ScenarioConfig base = tiny_config();
  ScenarioConfig occluded = base;
  OccultationSpec occ;
  occ.t_start = 1.4;
  occ.t_end = 1.9;
  occluded.occultations.push_back(occ);

  // Occultation consumes no randomness, so the pre-drop timelines are
  // identical and the drop is exactly the dead-window population.
  const ScenarioData a = simulate_scenario(base, 11);
  const ScenarioData b = simulate_scenario(occluded, 11);
  EXPECT_GT(b.occulted_events, 0u);
  EXPECT_EQ(a.events.size(), b.events.size() + b.occulted_events);
  for (const auto& event : b.events) {
    EXPECT_FALSE(event.time_s >= occ.t_start && event.time_s < occ.t_end);
  }
}

TEST(ScenarioEngine, SharedDaqPileupMergesTimeline) {
  ScenarioConfig base = tiny_config();
  ScenarioConfig piled = base;
  piled.pileup_latency_s = 2e-4;

  const ScenarioData a = simulate_scenario(base, 13);
  const ScenarioData b = simulate_scenario(piled, 13);
  EXPECT_EQ(a.piled_up_events, 0u);
  EXPECT_GT(b.piled_up_events, 0u);
  EXPECT_EQ(a.events.size(), b.events.size() + b.piled_up_events);
}

TEST(ScenarioEngine, LaterComponentsDoNotPerturbEarlierOnes) {
  // The splitmix64 chain hands out component seeds in a fixed order
  // (calibration, background, bursts, flares, surges): adding a surge
  // must not change the burst realization.
  ScenarioConfig base = tiny_config();
  ScenarioConfig surged = base;
  SurgeSpec surge;
  surge.t_start = 1.5;
  surge.t_end = 1.9;
  surge.factor = 3.0;
  surged.surges.push_back(surge);

  const ScenarioData a = simulate_scenario(base, 17);
  const ScenarioData b = simulate_scenario(surged, 17);
  EXPECT_GT(b.surge_events, 0u);
  EXPECT_EQ(a.background_rate_hz, b.background_rate_hz);
  EXPECT_EQ(a.background_events, b.background_events);
  EXPECT_EQ(a.bursts[0].events, b.bursts[0].events);
}

TEST(ScenarioEngine, TriggerScoresBrightBurst) {
  const ScenarioData data = simulate_scenario(tiny_config(), 19);
  const TriggerScore score = score_trigger(data);
  ASSERT_EQ(data.bursts.size(), 1u);
  EXPECT_GT(data.bursts[0].events, 100u);
  EXPECT_GT(data.bursts[0].rings, 10u);
  EXPECT_EQ(score.bursts_detected, 1u);
  EXPECT_EQ(score.efficiency, 1.0);
  EXPECT_GE(score.true_positives, 1u);
  ASSERT_FALSE(score.intervals.empty());
  // The detected episode overlaps the true emission window.
  const BurstTruth& burst = data.bursts[0];
  bool overlap = false;
  for (const auto& interval : score.intervals)
    if (interval.t_start < burst.t_end && burst.t_start < interval.t_end)
      overlap = true;
  EXPECT_TRUE(overlap);
}

TEST(ScenarioEngine, RingsInWindowAreUsableAndInRange) {
  const ScenarioData data = simulate_scenario(tiny_config(), 23);
  const BurstTruth& burst = data.bursts[0];
  const auto indices = rings_in_window(data, burst.t_start, burst.t_end);
  EXPECT_EQ(indices.size(), burst.rings);
  EXPECT_GT(indices.size(), 0u);
  for (const std::size_t i : indices) {
    EXPECT_GE(data.ring_times[i], burst.t_start);
    EXPECT_LT(data.ring_times[i], burst.t_end);
  }
}

}  // namespace
}  // namespace adapt::scenario
