#include "core/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace adapt::core {
namespace {

CliArgs make(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"adaptctl", "cmd"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data(), 2);
}

TEST(CliArgsTest, ParsesKeyValuePairs) {
  const CliArgs args = make({"--fluence", "2.5", "--seed", "17"});
  EXPECT_TRUE(args.has("fluence"));
  EXPECT_DOUBLE_EQ(args.number("fluence", 1.0), 2.5);
  EXPECT_EQ(args.count("seed", 0), 17u);
}

TEST(CliArgsTest, AbsentKeyFallsBack) {
  const CliArgs args = make({"--fluence", "2.5"});
  EXPECT_FALSE(args.has("polar"));
  EXPECT_DOUBLE_EQ(args.number("polar", 30.0), 30.0);
  EXPECT_EQ(args.text("metrics", "none"), "none");
}

TEST(CliArgsTest, NegativeValuesParse) {
  // The seed tool treated any '-'-prefixed token as a flag, so
  // `--polar -30` was fragile; a single '-' must read as a value.
  const CliArgs args = make({"--polar", "-30", "--azimuth", "-12.5"});
  EXPECT_DOUBLE_EQ(args.number("polar", 0.0), -30.0);
  EXPECT_DOUBLE_EQ(args.number("azimuth", 0.0), -12.5);
}

TEST(CliArgsTest, BooleanFlagBeforeAnotherFlag) {
  const CliArgs args = make({"--no-grid", "--fluence", "3.0"});
  EXPECT_TRUE(args.has("no-grid"));
  EXPECT_DOUBLE_EQ(args.number("fluence", 1.0), 3.0);
}

TEST(CliArgsTest, TrailingBooleanFlag) {
  const CliArgs args = make({"--fluence", "3.0", "--verbose"});
  EXPECT_TRUE(args.has("verbose"));
}

TEST(CliArgsTest, MalformedNumberThrowsInsteadOfZero) {
  // atof("banana") == 0.0 was the seed bug: a typo silently ran the
  // whole simulation with zero fluence.
  const CliArgs args = make({"--fluence", "banana"});
  EXPECT_THROW(args.number("fluence", 1.0), CliError);
  EXPECT_THROW(args.positive_number("fluence", 1.0), CliError);
}

TEST(CliArgsTest, PartiallyNumericTokenThrows) {
  const CliArgs args = make({"--fluence", "1.5x"});
  EXPECT_THROW(args.number("fluence", 1.0), CliError);
}

TEST(CliArgsTest, NonFiniteTokenThrows) {
  EXPECT_THROW(make({"--fluence", "inf"}).number("fluence", 1.0), CliError);
  EXPECT_THROW(make({"--fluence", "nan"}).number("fluence", 1.0), CliError);
}

TEST(CliArgsTest, PositiveNumberRejectsZeroAndNegative) {
  EXPECT_THROW(make({"--fluence", "0"}).positive_number("fluence", 1.0),
               CliError);
  EXPECT_THROW(make({"--fluence", "-2"}).positive_number("fluence", 1.0),
               CliError);
  EXPECT_DOUBLE_EQ(
      make({"--fluence", "0.25"}).positive_number("fluence", 1.0), 0.25);
}

TEST(CliArgsTest, CountRejectsNonIntegers) {
  EXPECT_THROW(make({"--trials", "ten"}).count("trials", 5), CliError);
  EXPECT_THROW(make({"--trials", "3.5"}).count("trials", 5), CliError);
  EXPECT_THROW(make({"--trials", "0"}).count("trials", 5), CliError);
  EXPECT_THROW(make({"--trials", "-4"}).count("trials", 5), CliError);
  EXPECT_EQ(make({"--trials", "250"}).count("trials", 5), 250u);
}

TEST(CliArgsTest, UnexpectedPositionalTokenThrows) {
  std::vector<const char*> argv{"adaptctl", "cmd", "stray", "--fluence", "1"};
  EXPECT_THROW(
      CliArgs(static_cast<int>(argv.size()), argv.data(), 2), CliError);
}

TEST(CliArgsTest, BareFlagNumberFallsBack) {
  // `--fluence` with no value reads as a boolean flag; numeric lookup
  // falls back rather than inventing a number.
  const CliArgs args = make({"--fluence"});
  EXPECT_TRUE(args.has("fluence"));
  EXPECT_DOUBLE_EQ(args.number("fluence", 1.5), 1.5);
}

TEST(ParseDoubleTest, StrictFullTokenSemantics) {
  EXPECT_DOUBLE_EQ(parse_double("-3.5e2", "x"), -350.0);
  EXPECT_THROW(parse_double("", "x"), CliError);
  EXPECT_THROW(parse_double("  ", "x"), CliError);
  EXPECT_THROW(parse_double("12abc", "x"), CliError);
}

TEST(ParseDoubleTest, ErrorNamesFlagAndToken) {
  try {
    parse_double("banana", "fluence");
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fluence"), std::string::npos) << msg;
    EXPECT_NE(msg.find("banana"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace adapt::core
