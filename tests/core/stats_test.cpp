#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace adapt::core {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, NumericallyStableForLargeOffsets) {
  RunningStat s;
  const double offset = 1e9;
  for (double v : {1.0, 2.0, 3.0}) s.add(offset + v);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}

TEST(Quantile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Quantile, RejectsOutOfRangeLevel) {
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
}

TEST(Containment, MatchesPaperDefinition) {
  // "the largest error observed in at most 68% of trials":
  // with 10 sorted values, ceil(0.68*10) = 7 -> 7th smallest.
  std::vector<double> errors;
  for (int i = 1; i <= 10; ++i) errors.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(containment(errors, 0.68), 7.0);
  EXPECT_DOUBLE_EQ(containment(errors, 0.95), 10.0);
  EXPECT_DOUBLE_EQ(containment(errors, 1.0), 10.0);
}

TEST(Containment, SingleTrial) {
  EXPECT_DOUBLE_EQ(containment({5.0}, 0.68), 5.0);
}

TEST(Containment, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(containment({9.0, 1.0, 5.0, 3.0, 7.0}, 0.6), 5.0);
}

TEST(Containment, Pair68And95) {
  std::vector<double> errors;
  for (int i = 1; i <= 100; ++i) errors.push_back(static_cast<double>(i));
  const Containment c = containment_68_95(std::move(errors));
  EXPECT_DOUBLE_EQ(c.c68, 68.0);
  EXPECT_DOUBLE_EQ(c.c95, 95.0);
  EXPECT_EQ(c.trials, 100u);
}

TEST(MeanStdTest, ComputesBoth) {
  const MeanStd m = mean_std({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(m.mean, 2.0);
  EXPECT_DOUBLE_EQ(m.stddev, 1.0);
}

TEST(MeanStdTest, EmptyIsZero) {
  const MeanStd m = mean_std({});
  EXPECT_DOUBLE_EQ(m.mean, 0.0);
  EXPECT_DOUBLE_EQ(m.stddev, 0.0);
}

}  // namespace
}  // namespace adapt::core
