#include "core/mat3.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "core/units.hpp"

namespace adapt::core {
namespace {

TEST(Mat3, IdentityActsTrivially) {
  const Mat3 id = Mat3::identity();
  const Vec3 v{1.0, -2.0, 3.0};
  const Vec3 r = id * v;
  EXPECT_DOUBLE_EQ(r.x, v.x);
  EXPECT_DOUBLE_EQ(r.y, v.y);
  EXPECT_DOUBLE_EQ(r.z, v.z);
  EXPECT_DOUBLE_EQ(id.det(), 1.0);
}

TEST(Mat3, MatrixProductMatchesManual) {
  Mat3 a;
  a.m = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  Mat3 b;
  b.m = {9, 8, 7, 6, 5, 4, 3, 2, 1};
  const Mat3 c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 1 * 9 + 2 * 6 + 3 * 3);
  EXPECT_DOUBLE_EQ(c(2, 2), 7 * 7 + 8 * 4 + 9 * 1);
}

TEST(Mat3, TransposeSwapsOffDiagonals) {
  Mat3 a;
  a.m = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const Mat3 t = a.transposed();
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
}

TEST(Mat3, InverseRecoversIdentity) {
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    Mat3 a;
    for (auto& v : a.m) v = rng.uniform(-2.0, 2.0);
    Mat3 inv;
    if (!a.inverse(inv, 1e-9)) continue;  // Skip near-singular draws.
    const Mat3 prod = a * inv;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j)
        EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9);
  }
}

TEST(Mat3, SingularInverseReturnsFalse) {
  Mat3 a;
  a.m = {1, 2, 3, 2, 4, 6, 1, 1, 1};  // Row 2 = 2 * row 1.
  Mat3 inv;
  EXPECT_FALSE(a.inverse(inv, 1e-12));
}

TEST(Mat3, OuterProductStructure) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, 5.0, 6.0};
  const Mat3 o = Mat3::outer(a, b);
  EXPECT_DOUBLE_EQ(o(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(o(1, 2), 12.0);
  EXPECT_DOUBLE_EQ(o(2, 1), 15.0);
  // Rank 1: determinant zero.
  EXPECT_NEAR(o.det(), 0.0, 1e-12);
}

TEST(Mat3, RotationPreservesLengthAndAngle) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec3 axis = rng.isotropic_direction();
    const double angle = rng.uniform(-kPi, kPi);
    const Mat3 r = Mat3::rotation(axis, angle);
    const Vec3 v = rng.isotropic_direction() * rng.uniform(0.5, 2.0);
    const Vec3 rv = r * v;
    EXPECT_NEAR(rv.norm(), v.norm(), 1e-12);
    // Component along the axis is unchanged.
    EXPECT_NEAR(rv.dot(axis), v.dot(axis), 1e-12);
  }
}

TEST(Mat3, RotationDeterminantIsOne) {
  const Mat3 r = Mat3::rotation(Vec3{1, 1, 1}, 1.3);
  EXPECT_NEAR(r.det(), 1.0, 1e-12);
}

TEST(Mat3, FrameToMapsZAxisToDirection) {
  Rng rng(15);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec3 d = rng.isotropic_direction();
    const Mat3 f = Mat3::frame_to(d);
    const Vec3 mapped = f * Vec3{0, 0, 1};
    EXPECT_NEAR((mapped - d).norm(), 0.0, 1e-12);
    EXPECT_NEAR(f.det(), 1.0, 1e-12);
  }
}

TEST(Mat3, FrameToHandlesPolarSingularities) {
  const Mat3 up = Mat3::frame_to(Vec3{0, 0, 1});
  EXPECT_NEAR((up * Vec3{0, 0, 1} - Vec3{0, 0, 1}).norm(), 0.0, 1e-12);
  const Mat3 down = Mat3::frame_to(Vec3{0, 0, -1});
  EXPECT_NEAR((down * Vec3{0, 0, 1} - Vec3{0, 0, -1}).norm(), 0.0, 1e-12);
}

TEST(Mat3, SolveDampedSolvesWellConditionedSystem) {
  Mat3 a;
  a.m = {4, 1, 0, 1, 3, 1, 0, 1, 5};
  const Vec3 x_true{1.0, -2.0, 0.5};
  const Vec3 b = a * x_true;
  Vec3 x;
  ASSERT_TRUE(solve_damped(a, b, 0.0, x));
  EXPECT_NEAR(x.x, x_true.x, 1e-12);
  EXPECT_NEAR(x.y, x_true.y, 1e-12);
  EXPECT_NEAR(x.z, x_true.z, 1e-12);
}

TEST(Mat3, SolveDampedRegularizesSingularSystem) {
  // Rank-1 system: without damping unsolvable, with damping solvable.
  const Mat3 a = Mat3::outer(Vec3{1, 0, 0}, Vec3{1, 0, 0});
  Vec3 x;
  EXPECT_FALSE(solve_damped(a, Vec3{1, 0, 0}, 0.0, x));
  EXPECT_TRUE(solve_damped(a, Vec3{1, 0, 0}, 1e-6, x));
  EXPECT_NEAR(x.x, 1.0, 1e-4);
}

}  // namespace
}  // namespace adapt::core
