#include "core/telemetry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "core/parallel.hpp"

namespace adapt::core::telemetry {
namespace {

/// Every test runs with a clean, enabled registry and restores the
/// prior enable state afterwards (other suites in this binary must not
/// see telemetry flipped on behind their backs).
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    reset();
    set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(TelemetryTest, CounterAddsAndResets) {
  Counter& c = counter("test.counter.basic");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(TelemetryTest, SameNameYieldsSameCounter) {
  Counter& a = counter("test.counter.same");
  Counter& b = counter("test.counter.same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST_F(TelemetryTest, DisabledCounterRecordsNothing) {
  Counter& c = counter("test.counter.disabled");
  set_enabled(false);
  c.add(100);
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(TelemetryTest, HistogramTracksMoments) {
  Histogram& h = histogram("test.hist.moments");
  h.record(1.0);
  h.record(3.0);
  h.record(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST_F(TelemetryTest, EmptyHistogramReportsZeros) {
  Histogram& h = histogram("test.hist.empty");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST_F(TelemetryTest, HistogramBinEdgesAreMonotonicLogSpaced) {
  double prev = Histogram::bin_lower_edge(0);
  EXPECT_DOUBLE_EQ(prev, Histogram::kBinFloor);
  for (int i = 1; i < Histogram::kBins; ++i) {
    const double edge = Histogram::bin_lower_edge(i);
    EXPECT_DOUBLE_EQ(edge, prev * 2.0);
    prev = edge;
  }
}

TEST_F(TelemetryTest, HistogramBinsPartitionValues) {
  // Sub-floor, zero, and NaN all land in bin 0; huge values in the
  // last bin; interior values in the bin whose edge range covers them.
  EXPECT_EQ(Histogram::bin_of(0.0), 0);
  EXPECT_EQ(Histogram::bin_of(-5.0), 0);
  EXPECT_EQ(Histogram::bin_of(std::nan("")), 0);
  EXPECT_EQ(Histogram::bin_of(1e300), Histogram::kBins - 1);
  for (int i = 0; i < Histogram::kBins; ++i) {
    const double inside = Histogram::bin_lower_edge(i) * 1.5;
    EXPECT_EQ(Histogram::bin_of(inside), i) << "bin " << i;
  }
}

TEST_F(TelemetryTest, HistogramBinCountsMatchRecords) {
  Histogram& h = histogram("test.hist.bins");
  const double v = Histogram::bin_lower_edge(5) * 1.1;
  h.record(v);
  h.record(v);
  h.record(Histogram::bin_lower_edge(9) * 1.1);
  EXPECT_EQ(h.bin_count(5), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(7), 0u);
}

TEST_F(TelemetryTest, ScopedTimerRecordsWhenEnabled) {
  Histogram& h = histogram("test.timer.enabled");
  { const ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 0.0);
}

TEST_F(TelemetryTest, ScopedTimerFillsSlotEvenWhenDisabled) {
  Histogram& h = histogram("test.timer.slot");
  set_enabled(false);
  double slot = 0.0;
  {
    const ScopedTimer t(h, &slot);
    // Burn a little time so the slot is visibly non-negative.
    volatile double x = 0.0;
    for (int i = 0; i < 1000; ++i) x = x + static_cast<double>(i);
  }
  set_enabled(true);
  EXPECT_EQ(h.count(), 0u);   // Histogram untouched while disabled...
  EXPECT_GE(slot, 0.0);       // ...but the StageTimings slot still fed.
}

TEST_F(TelemetryTest, SnapshotCapturesAndDiffs) {
  counter("test.snap.counter").add(7);
  histogram("test.snap.hist").record(2.0);

  const Snapshot first = snapshot();
  EXPECT_EQ(first.counters.at("test.snap.counter"), 7u);
  EXPECT_EQ(first.histograms.at("test.snap.hist").count, 1u);

  counter("test.snap.counter").add(5);
  histogram("test.snap.hist").record(4.0);
  const Snapshot delta = snapshot().since(first);
  EXPECT_EQ(delta.counters.at("test.snap.counter"), 5u);
  EXPECT_EQ(delta.histograms.at("test.snap.hist").count, 1u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("test.snap.hist").sum, 4.0);
}

TEST_F(TelemetryTest, SnapshotMergeAdds) {
  counter("test.merge.c").add(2);
  histogram("test.merge.h").record(1.0);
  Snapshot a = snapshot();
  const Snapshot b = snapshot();
  a.merge(b);
  EXPECT_EQ(a.counters.at("test.merge.c"), 4u);
  EXPECT_EQ(a.histograms.at("test.merge.h").count, 2u);
  EXPECT_DOUBLE_EQ(a.histograms.at("test.merge.h").sum, 2.0);
  EXPECT_DOUBLE_EQ(a.histograms.at("test.merge.h").min, 1.0);
}

TEST_F(TelemetryTest, ParallelIncrementsAggregateDeterministically) {
  // The counter total and the histogram bin counts must be identical
  // no matter how the loop was scheduled — run the same work serially
  // and in parallel and compare snapshots.
  const std::size_t n = 10000;
  const auto work = [](std::size_t i) {
    counter("test.par.counter").add(i % 3);
    histogram("test.par.hist").record(static_cast<double>(i % 7) + 0.5);
  };

  for (std::size_t i = 0; i < n; ++i) work(i);
  const Snapshot serial = snapshot();
  reset();
  parallel_for(n, work);
  const Snapshot parallel = snapshot();

  EXPECT_EQ(serial.counters.at("test.par.counter"),
            parallel.counters.at("test.par.counter"));
  const auto& hs = serial.histograms.at("test.par.hist");
  const auto& hp = parallel.histograms.at("test.par.hist");
  EXPECT_EQ(hs.count, hp.count);
  EXPECT_DOUBLE_EQ(hs.min, hp.min);
  EXPECT_DOUBLE_EQ(hs.max, hp.max);
  EXPECT_NEAR(hs.sum, hp.sum, 1e-6 * hs.sum);
  for (std::size_t i = 0; i < hs.bins.size(); ++i)
    EXPECT_EQ(hs.bins[i], hp.bins[i]) << "bin " << i;
}

TEST_F(TelemetryTest, ThreadedCountersLoseNothing) {
  Counter& c = counter("test.threads.counter");
  const int kThreads = 4;
  const int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(TelemetryTest, JsonOutputNamesEveryMetric) {
  counter("test.json.counter").add(3);
  histogram("test.json.hist").record(1.5);
  std::ostringstream os;
  snapshot().write_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"test.json.counter\": 3"), std::string::npos) << j;
  EXPECT_NE(j.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"bins\""), std::string::npos);
}

TEST_F(TelemetryTest, CsvOutputHasHeaderAndRows) {
  counter("test.csv.counter").add(9);
  histogram("test.csv.hist").record(2.0);
  std::ostringstream os;
  snapshot().write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,name,count,sum,mean,min,max"), std::string::npos);
  EXPECT_NE(csv.find("counter,test.csv.counter,9"), std::string::npos);
  EXPECT_NE(csv.find("histogram,test.csv.hist,1"), std::string::npos);
}

TEST_F(TelemetryTest, ResetZeroesButKeepsReferencesValid) {
  Counter& c = counter("test.reset.counter");
  Histogram& h = histogram("test.reset.hist");
  c.add(5);
  h.record(1.0);
  reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(2);  // Reference still live after reset.
  EXPECT_EQ(c.value(), 2u);
}

}  // namespace
}  // namespace adapt::core::telemetry
