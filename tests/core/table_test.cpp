#include "core/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace adapt::core {
namespace {

TEST(TextTable, PrintsAlignedColumns) {
  TextTable t({"stage", "ms"});
  t.add_row({"recon", "36.9"});
  t.add_row({"localization setup", "35.4"});
  std::ostringstream os;
  t.print(os, "Timing");
  const std::string out = os.str();
  EXPECT_NE(out.find("Timing"), std::string::npos);
  EXPECT_NE(out.find("recon"), std::string::npos);
  EXPECT_NE(out.find("localization setup"), std::string::npos);
  // Header separator lines present.
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(TextTable, RowWidthMustMatchHeader) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.0, 1), "3.0");
  EXPECT_EQ(TextTable::integer(42), "42");
  EXPECT_EQ(TextTable::integer(-7), "-7");
}

TEST(TextTable, CsvRoundTrip) {
  TextTable t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "2"});
  t.add_row({"with\"quote", "3"});
  const std::string path = "/tmp/adaptml_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));

  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "name,value");
  std::getline(f, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(f, line);
  EXPECT_EQ(line, "\"with,comma\",2");
  std::getline(f, line);
  EXPECT_EQ(line, "\"with\"\"quote\",3");
  std::remove(path.c_str());
}

TEST(TextTable, CsvFailsOnBadPath) {
  TextTable t({"a"});
  EXPECT_FALSE(t.write_csv("/nonexistent_dir_xyz/file.csv"));
}

TEST(TextTable, RowsCounted) {
  TextTable t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace adapt::core
