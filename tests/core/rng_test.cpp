#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/stats.hpp"

namespace adapt::core {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stat.add(u);
  }
  EXPECT_NEAR(stat.mean(), 0.5, 0.01);
  EXPECT_NEAR(stat.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeUnbiased) {
  Rng rng(9);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i)
    ++counts[static_cast<std::size_t>(rng.uniform_index(7))];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, 5.0 * std::sqrt(n / 7.0));
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(10);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.add(rng.normal());
  EXPECT_NEAR(stat.mean(), 0.0, 0.02);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(12);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stat.mean(), 10.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.add(rng.exponential(3.0));
  EXPECT_NEAR(stat.mean(), 3.0, 0.1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(14);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i)
    stat.add(static_cast<double>(rng.poisson(4.5)));
  EXPECT_NEAR(stat.mean(), 4.5, 0.05);
  EXPECT_NEAR(stat.variance(), 4.5, 0.15);
}

TEST(Rng, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(15);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i)
    stat.add(static_cast<double>(rng.poisson(10000.0)));
  EXPECT_NEAR(stat.mean(), 10000.0, 5.0);
  EXPECT_NEAR(stat.stddev(), 100.0, 3.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(16);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, IsotropicDirectionIsUnitAndBalanced) {
  Rng rng(17);
  RunningStat z_stat;
  for (int i = 0; i < 20000; ++i) {
    const Vec3 d = rng.isotropic_direction();
    ASSERT_NEAR(d.norm(), 1.0, 1e-12);
    z_stat.add(d.z);
  }
  // z uniform in [-1, 1]: mean 0, variance 1/3.
  EXPECT_NEAR(z_stat.mean(), 0.0, 0.02);
  EXPECT_NEAR(z_stat.variance(), 1.0 / 3.0, 0.01);
}

TEST(Rng, HemisphereDirectionPointsUp) {
  Rng rng(18);
  for (int i = 0; i < 2000; ++i) {
    const Vec3 d = rng.hemisphere_direction_up();
    ASSERT_GE(d.z, 0.0);
    ASSERT_NEAR(d.norm(), 1.0, 1e-12);
  }
}

TEST(Rng, UniformDiskIsUniform) {
  Rng rng(19);
  // Uniformity check: mean radius of a uniform disk of radius R is
  // 2R/3, and all points lie within the disk in the z = 0 plane.
  RunningStat r_stat;
  for (int i = 0; i < 20000; ++i) {
    const Vec3 p = rng.uniform_disk(2.0);
    ASSERT_DOUBLE_EQ(p.z, 0.0);
    const double r = std::sqrt(p.x * p.x + p.y * p.y);
    ASSERT_LE(r, 2.0);
    r_stat.add(r);
  }
  EXPECT_NEAR(r_stat.mean(), 4.0 / 3.0, 0.01);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(20);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (child1.next_u64() == child2.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitmixAvalanche) {
  // Successive splitmix outputs from adjacent states should differ in
  // roughly half the bits.
  std::uint64_t s1 = 1;
  std::uint64_t s2 = 2;
  const std::uint64_t a = splitmix64(s1);
  const std::uint64_t b = splitmix64(s2);
  const int popcount = __builtin_popcountll(a ^ b);
  EXPECT_GT(popcount, 16);
  EXPECT_LT(popcount, 48);
}

}  // namespace
}  // namespace adapt::core
