#include "core/cpu_features.hpp"

#include <gtest/gtest.h>

namespace adapt::core {
namespace {

TEST(CpuFeatures, ProbeIsCachedAndStable) {
  const CpuFeatures& a = cpu_features();
  const CpuFeatures& b = cpu_features();
  EXPECT_EQ(&a, &b);  // One probe, one cached instance.
}

TEST(CpuFeatures, Avx512KernelClassRequiresAllFourExtensions) {
  CpuFeatures f;
  EXPECT_FALSE(f.avx512_kernel_class());
  f.avx512f = f.avx512bw = f.avx512vl = f.avx512vnni = true;
  EXPECT_TRUE(f.avx512_kernel_class());
  for (bool* flag : {&f.avx512f, &f.avx512bw, &f.avx512vl, &f.avx512vnni}) {
    *flag = false;
    EXPECT_FALSE(f.avx512_kernel_class());
    *flag = true;
  }
}

TEST(CpuFeatures, HostAvx512ImpliesAvx2) {
  // No real x86 part (or VM) offers the AVX-512 kernel class without
  // AVX2; if this fires the probe is misreading cpuid or XCR0.
  const CpuFeatures& f = cpu_features();
  if (f.avx512_kernel_class()) {
    EXPECT_TRUE(f.avx2);
  }
}

TEST(CpuFeatures, SummaryListsDetectedFlags) {
  const CpuFeatures& f = cpu_features();
  const std::string s = cpu_features_summary();
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.find("avx2") != std::string::npos, f.avx2);
  EXPECT_EQ(s.find("avx512vnni") != std::string::npos, f.avx512vnni);
  if (!f.avx2 && !f.fma && !f.avx512f && !f.avx512bw && !f.avx512vl &&
      !f.avx512vnni) {
    EXPECT_EQ(s, "none (scalar only)");
  }
}

}  // namespace
}  // namespace adapt::core
