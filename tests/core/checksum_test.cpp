#include "core/checksum.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace adapt::core {
namespace {

std::uint64_t hash_str(const std::string& s) {
  return fnv1a64(s.data(), s.size());
}

TEST(Checksum, KnownFnv1a64Vectors) {
  // Reference vectors from the FNV specification (Noll's test suite).
  EXPECT_EQ(hash_str(""), Fnv1a64::kOffsetBasis);
  EXPECT_EQ(hash_str("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(hash_str("foobar"), 0x85944171f73967e8ULL);
}

TEST(Checksum, StreamingMatchesOneShot) {
  std::vector<unsigned char> buf(1024);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<unsigned char>((i * 131 + 7) & 0xff);
  const std::uint64_t one_shot = fnv1a64(buf.data(), buf.size());

  for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                  std::size_t{13}, std::size_t{512},
                                  buf.size()}) {
    Fnv1a64 h;
    h.update(buf.data(), split);
    h.update(buf.data() + split, buf.size() - split);
    EXPECT_EQ(h.digest(), one_shot) << "split at " << split;
  }

  // Byte-at-a-time streaming folds to the same digest.
  Fnv1a64 h;
  for (const unsigned char b : buf) h.update(&b, 1);
  EXPECT_EQ(h.digest(), one_shot);
}

TEST(Checksum, AnySingleBitFlipChangesDigest) {
  // The property the SEU detection relies on: one flipped bit anywhere
  // in the buffer moves the digest.
  std::vector<unsigned char> buf(256);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<unsigned char>(i);
  const std::uint64_t reference = fnv1a64(buf.data(), buf.size());

  for (std::size_t byte = 0; byte < buf.size(); byte += 17) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      buf[byte] ^= static_cast<unsigned char>(1u << bit);
      EXPECT_NE(fnv1a64(buf.data(), buf.size()), reference)
          << "byte " << byte << " bit " << bit;
      buf[byte] ^= static_cast<unsigned char>(1u << bit);
    }
  }
  EXPECT_EQ(fnv1a64(buf.data(), buf.size()), reference);
}

TEST(Checksum, DigestDependsOnLength) {
  // Truncation (the model-upload failure mode) changes the digest even
  // when the surviving prefix is untouched.
  const std::string bytes = "ADNN model payload bytes";
  EXPECT_NE(fnv1a64(bytes.data(), bytes.size()),
            fnv1a64(bytes.data(), bytes.size() - 1));
}

}  // namespace
}  // namespace adapt::core
