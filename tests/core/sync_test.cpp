/// \file sync_test.cpp
/// Behavioral tests for the core::sync capability wrappers.  The
/// thread-safety gate (tools/check_static_analysis.sh --stage
/// thread-safety) proves the static annotations; these tests prove the
/// wrappers still behave like the std primitives they wrap — RAII
/// release, try-lock contention semantics, shared/exclusive access,
/// and condvar wakeup with the explicit wait-loop idiom the header
/// prescribes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/sync.hpp"

namespace adapt::core {
namespace {

TEST(SyncTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mutex;
  mutex.lock();
  std::atomic<bool> contended_result{true};
  std::thread other([&] { contended_result = mutex.try_lock(); });
  other.join();
  EXPECT_FALSE(contended_result.load());
  mutex.unlock();

  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(SyncTest, LockGuardReleasesOnScopeExit) {
  Mutex mutex;
  {
    LockGuard guard(mutex);
  }
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(SyncTest, LockGuardExcludesConcurrentCriticalSections) {
  Mutex mutex;
  int counter = 0;  // deliberately non-atomic: the guard is the fence
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        LockGuard guard(mutex);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SyncTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mutex;
  mutex.lock_shared();
  // A second reader must get in while the first share is held.
  EXPECT_TRUE(mutex.try_lock_shared());
  mutex.unlock_shared();
  mutex.unlock_shared();
}

TEST(SyncTest, SharedMutexWriterExcludesReaders) {
  SharedMutex mutex;
  {
    WriterLock writer(mutex);
    std::atomic<bool> reader_got_in{true};
    std::thread reader([&] { reader_got_in = mutex.try_lock_shared(); });
    reader.join();
    EXPECT_FALSE(reader_got_in.load());
  }
  // Writer gone: shared access resumes.
  {
    ReaderLock reader(mutex);
  }
}

TEST(SyncTest, ReaderLockExcludesWriter) {
  SharedMutex mutex;
  {
    ReaderLock reader(mutex);
    EXPECT_FALSE(mutex.try_lock());
  }
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(SyncTest, CondVarWaitLoopSeesPredicateFlippedByNotifier) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;  // guarded by mutex (locally scoped test state)

  std::thread notifier([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      LockGuard guard(mutex);
      ready = true;
    }
    cv.notify_one();
  });

  {
    UniqueLock lock(mutex);
    // The explicit wait loop core/sync.hpp prescribes (a lambda
    // predicate would be analyzed as a separate function by the
    // thread-safety analysis and lose the capability context).
    while (!ready) cv.wait(lock);
    EXPECT_TRUE(ready);
  }
  notifier.join();
}

TEST(SyncTest, CondVarWaitForTimesOutWithoutNotify) {
  Mutex mutex;
  CondVar cv;
  UniqueLock lock(mutex);
  const bool notified =
      cv.wait_for(lock, std::chrono::milliseconds(5)) ==
      std::cv_status::no_timeout;
  EXPECT_FALSE(notified);
}

TEST(SyncTest, UniqueLockRelocks) {
  Mutex mutex;
  UniqueLock lock(mutex);
  lock.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
  lock.lock();
  EXPECT_FALSE(mutex.try_lock());
}

}  // namespace
}  // namespace adapt::core
