#include "core/contract.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "physics/compton.hpp"
#include "quant/quantized_mlp.hpp"

namespace adapt::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNaN = std::numeric_limits<double>::quiet_NaN();

// --- ADAPT_REQUIRE: always on, every build type -----------------------

TEST(Contract, RequireThrowsContractViolationWithFileAndLine) {
  try {
    ADAPT_REQUIRE(1 + 1 == 3, "math is broken");
    FAIL() << "ADAPT_REQUIRE(false) must throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("requirement"), std::string::npos) << what;
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("contract_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("math is broken"), std::string::npos) << what;
  }
}

TEST(Contract, ViolationIsCatchableAsInvalidArgument) {
  // Pre-contract call sites catch std::invalid_argument; the new
  // exception type must keep satisfying them.
  EXPECT_THROW(ADAPT_REQUIRE(false, "boundary"), std::invalid_argument);
  EXPECT_THROW(ADAPT_REQUIRE(false, "boundary"), std::logic_error);
}

TEST(Contract, RequirePassesSilently) {
  EXPECT_NO_THROW(ADAPT_REQUIRE(true, "never fires"));
}

// --- ENSURE / INVARIANT: gated on ADAPT_CHECKED -----------------------

TEST(Contract, EnsureEvaluatesOnlyInCheckedBuilds) {
  // The disabled form type-checks inside sizeof() and must never
  // evaluate — a contract with a (deliberate, test-only) side effect
  // makes the cost model observable.
  int evaluations = 0;
  ADAPT_ENSURE((++evaluations, true), "counting evaluations");
  ADAPT_INVARIANT((++evaluations, true), "counting evaluations");
#if ADAPT_CONTRACTS_CHECKED
  EXPECT_EQ(evaluations, 2);
#else
  EXPECT_EQ(evaluations, 0) << "release build must compile contracts out";
#endif
}

#if ADAPT_CONTRACTS_CHECKED
TEST(Contract, EnsureThrowsWithPostconditionKind) {
  try {
    ADAPT_ENSURE(false, "promised and failed");
    FAIL() << "checked ADAPT_ENSURE(false) must throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("postcondition"), std::string::npos) << what;
    EXPECT_NE(what.find("contract_test.cpp"), std::string::npos) << what;
  }
}

TEST(Contract, InvariantThrowsWithInvariantKind) {
  try {
    ADAPT_INVARIANT(false, "state corrupted");
    FAIL() << "checked ADAPT_INVARIANT(false) must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}
#else
TEST(Contract, EnsureIsSilentInRelease) {
  EXPECT_NO_THROW(ADAPT_ENSURE(false, "compiled out"));
  EXPECT_NO_THROW(ADAPT_INVARIANT(false, "compiled out"));
}
#endif

// --- predicates: boundary values --------------------------------------

TEST(Contract, CosinePredicateAcceptsExactBoundaries) {
  // cos(eta) = +/-1 are physical (forward/backscatter) and must pass.
  EXPECT_TRUE(is_cosine(1.0));
  EXPECT_TRUE(is_cosine(-1.0));
  EXPECT_TRUE(is_cosine(0.0));
  EXPECT_FALSE(is_cosine(std::nextafter(1.0, 2.0)));
  EXPECT_FALSE(is_cosine(std::nextafter(-1.0, -2.0)));
  EXPECT_FALSE(is_cosine(kNaN));
  EXPECT_FALSE(is_cosine(kInf));
}

TEST(Contract, ProbPredicateAcceptsClosedUnitInterval) {
  EXPECT_TRUE(is_prob(0.0));
  EXPECT_TRUE(is_prob(1.0));
  EXPECT_FALSE(is_prob(std::nextafter(1.0, 2.0)));
  EXPECT_FALSE(is_prob(-0.001));
  EXPECT_FALSE(is_prob(kNaN));
}

TEST(Contract, QuantScalePredicateRejectsZeroNegativeNonFinite) {
  EXPECT_TRUE(is_quant_scale(1e-30));
  EXPECT_TRUE(is_quant_scale(1.0));
  EXPECT_FALSE(is_quant_scale(0.0));
  EXPECT_FALSE(is_quant_scale(-1.0));
  EXPECT_FALSE(is_quant_scale(kInf));
  EXPECT_FALSE(is_quant_scale(kNaN));
}

TEST(Contract, UnitVectorPredicateUsesTolerance) {
  EXPECT_TRUE(is_unit_vector(Vec3{0.0, 0.0, 1.0}));
  EXPECT_TRUE(is_unit_vector(Vec3{0.0, 0.0, 1.0 + 1e-9}));
  EXPECT_FALSE(is_unit_vector(Vec3{0.0, 0.0, 1.01}));
  EXPECT_FALSE(is_unit_vector(Vec3{0.0, 0.0, 0.0}));
  EXPECT_FALSE(is_unit_vector(Vec3{kNaN, 0.0, 1.0}));
  EXPECT_TRUE(is_unit_vector(Vec3{0.0, 0.0, 1.005}, /*tol=*/0.01));
}

TEST(Contract, FinitePredicate) {
  EXPECT_TRUE(is_finite_value(0.0));
  EXPECT_TRUE(is_finite_value(-1e300));
  EXPECT_FALSE(is_finite_value(kInf));
  EXPECT_FALSE(is_finite_value(-kInf));
  EXPECT_FALSE(is_finite_value(kNaN));
}

// --- throwing domain checks: value reporting ---------------------------

TEST(Contract, CheckCosineReportsOffendingValue) {
  try {
    check_cosine(1.5, "test cosine", __FILE__, __LINE__);
    FAIL() << "check_cosine(1.5) must throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test cosine"), std::string::npos) << what;
    EXPECT_NE(what.find("1.5"), std::string::npos) << what;
  }
  EXPECT_NO_THROW(check_cosine(-1.0, "boundary", __FILE__, __LINE__));
  EXPECT_NO_THROW(check_cosine(1.0, "boundary", __FILE__, __LINE__));
}

TEST(Contract, CheckUnitVectorReportsComponentsAndNorm) {
  try {
    check_unit_vector(Vec3{3.0, 0.0, 4.0}, "test axis", __FILE__, __LINE__);
    FAIL() << "check_unit_vector on a |v|=5 vector must throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test axis"), std::string::npos) << what;
    EXPECT_NE(what.find("5"), std::string::npos) << what;  // The norm.
  }
  EXPECT_NO_THROW(
      check_unit_vector(Vec3{0.0, 1.0, 0.0}, "unit", __FILE__, __LINE__));
}

// --- physics boundary values through the contracted functions ----------

TEST(Contract, ComptonKinematicsHoldAtAngularBoundaries) {
  // Forward scatter keeps all the energy; backscatter is the deepest
  // allowed loss.  Both boundaries must satisfy the postcondition.
  const double e = 1.0;
  EXPECT_DOUBLE_EQ(physics::compton_scattered_energy(e, 1.0), e);
  const double back = physics::compton_scattered_energy(e, -1.0);
  EXPECT_GT(back, 0.0);
  EXPECT_LT(back, e);
}

TEST(Contract, ZeroEnergyPhotonRejectedAtBoundary) {
  EXPECT_THROW(physics::compton_scattered_energy(0.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(physics::compton_scattered_energy(-1.0, 0.5),
               std::invalid_argument);
}

// --- regression: a real invariant violation release mode let through ---

quant::QuantizedLayer tiny_layer_with_scale(float scale) {
  quant::QuantizedLayer l;
  l.in_features = 2;
  l.out_features = 1;
  l.weight = {1, -1};
  l.bias = {0};
  l.weight_scales = {scale};
  l.input_q.scale = 0.05F;
  l.input_q.zero_point = 0;
  return l;
}

TEST(Contract, QuantizedMlpRejectsNonPositiveScaleWhenChecked) {
  // A zero weight scale zeroes every requantized activation — the
  // model silently outputs garbage.  Release builds accepted this
  // (shape checks all pass); checked builds refuse at construction.
  std::vector<quant::QuantizedLayer> bad;
  bad.push_back(tiny_layer_with_scale(0.0F));
#if ADAPT_CONTRACTS_CHECKED
  EXPECT_THROW(quant::QuantizedMlp{std::move(bad)}, ContractViolation);
#else
  EXPECT_NO_THROW(quant::QuantizedMlp{std::move(bad)});
#endif
  std::vector<quant::QuantizedLayer> good;
  good.push_back(tiny_layer_with_scale(0.05F));
  EXPECT_NO_THROW(quant::QuantizedMlp{std::move(good)});
}

}  // namespace
}  // namespace adapt::core
