#include "core/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "core/units.hpp"

namespace adapt::core {
namespace {

TEST(Vec3, ArithmeticOperators) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-1.0, 0.5, 2.0};
  const Vec3 sum = a + b;
  EXPECT_DOUBLE_EQ(sum.x, 0.0);
  EXPECT_DOUBLE_EQ(sum.y, 2.5);
  EXPECT_DOUBLE_EQ(sum.z, 5.0);

  const Vec3 diff = a - b;
  EXPECT_DOUBLE_EQ(diff.x, 2.0);
  EXPECT_DOUBLE_EQ(diff.y, 1.5);
  EXPECT_DOUBLE_EQ(diff.z, 1.0);

  const Vec3 scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.z, 6.0);
  const Vec3 scaled2 = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled2.z, 6.0);
  EXPECT_DOUBLE_EQ((a / 2.0).x, 0.5);
  EXPECT_DOUBLE_EQ((-a).y, -2.0);
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1.0, 1.0, 1.0};
  v += Vec3{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(v.y, 3.0);
  v -= Vec3{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(v.x, 1.0);
  v *= 3.0;
  EXPECT_DOUBLE_EQ(v.z, 9.0);
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  const Vec3 z = x.cross(y);
  EXPECT_DOUBLE_EQ(z.x, 0.0);
  EXPECT_DOUBLE_EQ(z.y, 0.0);
  EXPECT_DOUBLE_EQ(z.z, 1.0);
  // Anticommutative.
  const Vec3 mz = y.cross(x);
  EXPECT_DOUBLE_EQ(mz.z, -1.0);
}

TEST(Vec3, NormAndNormalized) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  const Vec3 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-15);
  EXPECT_NEAR(u.x, 0.6, 1e-15);
}

TEST(Vec3, NormalizedDegenerateReturnsUnit) {
  const Vec3 zero{0.0, 0.0, 0.0};
  const Vec3 u = zero.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-15);
}

TEST(Vec3, AngleBetweenOrthogonalAndParallel) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_NEAR(angle_between(x, y), kPi / 2.0, 1e-14);
  EXPECT_NEAR(angle_between(x, x), 0.0, 1e-14);
  EXPECT_NEAR(angle_between(x, -x), kPi, 1e-14);
}

TEST(Vec3, AngleBetweenNearlyParallelIsAccurate) {
  // atan2 formulation stays accurate where acos(dot) loses digits.
  const double tiny = 1e-9;
  const Vec3 a{1.0, 0.0, 0.0};
  const Vec3 b{1.0, tiny, 0.0};
  EXPECT_NEAR(angle_between(a, b), tiny, 1e-12);
}

TEST(Vec3, SphericalRoundTrip) {
  for (double polar : {0.1, 0.7, 1.2, 2.0, 3.0}) {
    for (double azimuth : {-2.0, 0.0, 0.9, 2.7}) {
      const Vec3 d = from_spherical(polar, azimuth);
      EXPECT_NEAR(d.norm(), 1.0, 1e-14);
      EXPECT_NEAR(polar_of(d), polar, 1e-12);
      if (polar > 0.15 && polar < 3.0) {
        EXPECT_NEAR(azimuth_of(d), azimuth, 1e-12);
      }
    }
  }
}

TEST(Vec3, PolarOfClampsOutOfRangeCosine) {
  // A vector with z slightly above 1 after normalization error must
  // not produce NaN.
  const Vec3 almost_up{0.0, 0.0, 1.0 + 1e-16};
  EXPECT_FALSE(std::isnan(polar_of(almost_up)));
  EXPECT_NEAR(polar_of(almost_up), 0.0, 1e-7);
}

TEST(Vec3, AnyOrthogonalIsOrthogonalAndUnit) {
  Rng rng(123);
  for (int i = 0; i < 50; ++i) {
    const Vec3 v = rng.isotropic_direction() * rng.uniform(0.1, 10.0);
    const Vec3 o = any_orthogonal(v);
    EXPECT_NEAR(o.norm(), 1.0, 1e-12);
    EXPECT_NEAR(o.dot(v.normalized()), 0.0, 1e-12);
  }
}

TEST(Vec3, RotateAboutAxisPreservesAngle) {
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    const Vec3 axis = rng.isotropic_direction();
    const double theta = rng.uniform(0.0, kPi);
    const double phi = rng.uniform(0.0, kTwoPi);
    const Vec3 p = rotate_about_axis(axis, theta, phi);
    EXPECT_NEAR(p.norm(), 1.0, 1e-12);
    EXPECT_NEAR(angle_between(axis, p), theta, 1e-10);
  }
}

TEST(Vec3, RotateAboutAxisSweepsDistinctPoints) {
  const Vec3 axis{0.0, 0.0, 1.0};
  const Vec3 a = rotate_about_axis(axis, 0.5, 0.0);
  const Vec3 b = rotate_about_axis(axis, 0.5, kPi);
  EXPECT_GT((a - b).norm(), 0.5);
}

}  // namespace
}  // namespace adapt::core
