/// \file probe_unguarded_access.cpp
/// Negative-control probe for the thread-safety gate: this translation
/// unit reads an ADAPT_GUARDED_BY field WITHOUT holding its mutex and
/// therefore MUST FAIL to compile under
/// `clang++ -Werror=thread-safety -Werror=thread-safety-beta`.
///
/// The top-level CMakeLists try_compiles it at configure time whenever
/// ADAPT_THREAD_SAFETY=ON: if this file ever compiles, the gate has
/// silently become a no-op (wrong flags, attribute macros expanding to
/// nothing under the gate compiler) and configuration aborts.  The
/// matching positive control, probe_guarded_access.cpp, proves the
/// probe harness itself can compile correct code.

#include "core/sync.hpp"

namespace {

class Probe {
 public:
  // Deliberate violation: value_ is guarded by mutex_, and no lock is
  // taken on this path.
  int read_unguarded() const { return value_; }

 private:
  mutable adapt::core::Mutex mutex_;
  int value_ ADAPT_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Probe probe;
  return probe.read_unguarded();
}
