/// \file probe_guarded_access.cpp
/// Positive-control probe for the thread-safety gate: identical shape
/// to probe_unguarded_access.cpp but the guarded read happens under a
/// core::LockGuard, so it MUST compile cleanly under
/// `clang++ -Werror=thread-safety -Werror=thread-safety-beta`.
///
/// If this probe fails to compile, the try_compile harness itself is
/// broken (missing include path, bad flags) — without it, a broken
/// harness would be indistinguishable from a working gate, because
/// both make the negative probe "fail".

#include "core/sync.hpp"

namespace {

class Probe {
 public:
  int read_guarded() const {
    adapt::core::LockGuard lock(mutex_);
    return value_;
  }

 private:
  mutable adapt::core::Mutex mutex_;
  int value_ ADAPT_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Probe probe;
  return probe.read_guarded();
}
