/// \file qat_io_test.cpp
/// Byte-level hardening tests for the QAT model loader, built around
/// load_qat_model_from_bytes (the fuzz entry point — see
/// tests/fuzz/fuzz_qat_model.cpp).
///
/// The inverted/non-finite FakeQuant range cases pin a real bug found
/// by the fuzz harness: the loader used to feed the on-disk range
/// straight into FakeQuant::set_range, whose lo <= hi contract is an
/// always-on throwing check — so a two-byte corruption in an otherwise
/// checksum-valid file escaped the "reject, never throw" loader
/// contract as a ContractViolation.  The loader now validates the
/// range itself and rejects.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "core/checksum.hpp"
#include "quant/qat_io.hpp"

namespace adapt::quant {
namespace {

void append_u32(std::string& s, std::uint32_t v) {
  s.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void append_f32(std::string& s, float v) {
  s.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// A complete version-2 file holding exactly one FakeQuant layer with
/// the given range: magic, version, empty standardizer, one layer,
/// empty metadata, FNV-1a footer.  Mirrors save_qat_model's layout so
/// the tests can plant arbitrary (including invalid) ranges behind a
/// VALID checksum — the corruption must survive the digest gate to
/// reach the range check under test.
std::string fake_quant_file(float lo, float hi) {
  std::string body;
  body.append("ADQT", 4);
  append_u32(body, 2);  // version
  append_u32(body, 0);  // standardizer: not fitted
  append_u32(body, 1);  // n_layers
  append_u32(body, 2);  // Tag::kFakeQuant
  append_f32(body, lo);
  append_f32(body, hi);
  append_u32(body, 0);  // n_metadata
  const std::uint64_t digest = core::fnv1a64(body.data(), body.size());
  body.append(reinterpret_cast<const char*>(&digest), sizeof(digest));
  return body;
}

TEST(QatIoBytesTest, WellFormedFakeQuantLoads) {
  const std::string bytes = fake_quant_file(-1.5f, 2.5f);
  const auto loaded = load_qat_model_from_bytes(bytes);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->model.n_layers(), 1u);
  EXPECT_FALSE(loaded->standardizer.fitted());
  EXPECT_TRUE(loaded->metadata.empty());
}

TEST(QatIoBytesTest, DegenerateEqualRangeLoads) {
  // lo == hi is degenerate but satisfies the lo <= hi contract; the
  // loader must not be stricter than set_range itself.
  EXPECT_TRUE(load_qat_model_from_bytes(fake_quant_file(0.0f, 0.0f))
                  .has_value());
}

TEST(QatIoBytesTest, InvertedRangeRejectedNotThrown) {
  const std::string bytes = fake_quant_file(2.5f, -1.5f);
  std::optional<SavedQatModel> loaded;
  EXPECT_NO_THROW(loaded = load_qat_model_from_bytes(bytes));
  EXPECT_FALSE(loaded.has_value());
}

TEST(QatIoBytesTest, NonFiniteRangeRejectedNotThrown) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  for (const auto& [lo, hi] : {std::pair{nan, 1.0f}, std::pair{0.0f, nan},
                               std::pair{-inf, 1.0f}, std::pair{0.0f, inf}}) {
    const std::string bytes = fake_quant_file(lo, hi);
    std::optional<SavedQatModel> loaded;
    EXPECT_NO_THROW(loaded = load_qat_model_from_bytes(bytes));
    EXPECT_FALSE(loaded.has_value()) << "lo=" << lo << " hi=" << hi;
  }
}

TEST(QatIoBytesTest, CorruptedChecksumRejected) {
  std::string bytes = fake_quant_file(-1.0f, 1.0f);
  bytes[bytes.size() - 1] ^= 0x5a;  // flip a footer byte
  EXPECT_FALSE(load_qat_model_from_bytes(bytes).has_value());
}

TEST(QatIoBytesTest, TruncatedFileRejected) {
  const std::string bytes = fake_quant_file(-1.0f, 1.0f);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    // Every prefix either loses body bytes (checksum mismatch) or the
    // footer itself (too short) — all must reject without throwing.
    std::optional<SavedQatModel> loaded;
    EXPECT_NO_THROW(loaded =
                        load_qat_model_from_bytes(bytes.substr(0, len)));
    EXPECT_FALSE(loaded.has_value()) << "prefix length " << len;
  }
}

}  // namespace
}  // namespace adapt::quant
