/// Parameterized quantization properties: the QAT -> INT8 export chain
/// must preserve classification behaviour across architectures and
/// input ranges.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.hpp"
#include "quant/fuse.hpp"
#include "quant/qat_linear.hpp"
#include "quant/quantized_mlp.hpp"

namespace adapt::quant {
namespace {

nn::Tensor random_batch(std::size_t n, std::size_t d, std::uint64_t seed,
                        double scale) {
  core::Rng rng(seed);
  nn::Tensor x(n, d);
  for (auto& v : x.vec())
    v = static_cast<float>(rng.uniform(-scale, scale));
  return x;
}

struct ArchCase {
  std::vector<std::size_t> widths;
  std::size_t input_dim;
  double input_scale;
};

class QuantArchSweep : public ::testing::TestWithParam<ArchCase> {};

TEST_P(QuantArchSweep, ExportedEngineTracksQatModel) {
  const ArchCase& ac = GetParam();
  core::Rng rng(1234);
  nn::MlpSpec spec;
  spec.input_dim = ac.input_dim;
  spec.widths = ac.widths;
  spec.swap_bn_fc = true;
  nn::Sequential swapped = nn::build_mlp(spec, rng);
  for (int pass = 0; pass < 5; ++pass)
    (void)swapped.forward(
        random_batch(64, ac.input_dim, 10 + pass, ac.input_scale), true);

  const auto fused = fuse_bn(swapped);
  core::Rng qrng(99);
  nn::Sequential qat = build_qat_model(fused, qrng);
  for (int pass = 0; pass < 5; ++pass)
    (void)qat.forward(
        random_batch(64, ac.input_dim, 20 + pass, ac.input_scale), true);
  const QuantizedMlp engine = export_quantized(qat);

  const nn::Tensor x = random_batch(96, ac.input_dim, 777, ac.input_scale);
  const nn::Tensor y_qat = qat.forward(x, false);
  const nn::Tensor y_int8 = engine.forward(x);
  // Sign (classification) agreement must be near-total; numeric values
  // agree to requantization error.
  std::size_t agree = 0;
  for (std::size_t i = 0; i < y_qat.rows(); ++i)
    if ((y_qat(i, 0) >= 0.0f) == (y_int8(i, 0) >= 0.0f)) ++agree;
  EXPECT_GE(agree, y_qat.rows() - y_qat.rows() / 10);
}

TEST_P(QuantArchSweep, WeightQuantizationErrorBounded) {
  const ArchCase& ac = GetParam();
  core::Rng rng(55);
  QatLinear lin(ac.input_dim, ac.widths.front(), rng);
  const auto qp = lin.channel_qparams();
  const nn::Tensor qw = lin.quantized_weight();
  for (std::size_t r = 0; r < qw.rows(); ++r)
    for (std::size_t c = 0; c < qw.cols(); ++c)
      ASSERT_NEAR(qw(r, c), lin.weight().value(r, c),
                  qp[r].scale / 2 + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, QuantArchSweep,
    ::testing::Values(ArchCase{{256, 128, 64}, 13, 2.0},   // Paper bkg net.
                      ArchCase{{8, 16, 8}, 13, 2.0},       // Paper dEta net.
                      ArchCase{{32, 32}, 8, 1.0},
                      ArchCase{{64}, 20, 5.0},
                      ArchCase{{256, 128, 64}, 13, 0.1}));  // Narrow inputs.

// ---------------------------------------------------------------------
// Activation range sweep for the affine quantizer.

class RangeSweep
    : public ::testing::TestWithParam<std::pair<float, float>> {};

TEST_P(RangeSweep, AffineRoundTripWithinHalfScale) {
  const auto [lo, hi] = GetParam();
  const QParams p = QParams::from_range(lo, hi);
  for (int i = 0; i <= 64; ++i) {
    const float x = lo + (hi - lo) * static_cast<float>(i) / 64.0f;
    ASSERT_NEAR(p.fake(x), x, p.scale / 2 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RangeSweep,
    ::testing::Values(std::pair{-1.0f, 1.0f}, std::pair{0.0f, 6.0f},
                      std::pair{-10.0f, 0.5f}, std::pair{-0.01f, 0.01f},
                      std::pair{-300.0f, 300.0f}));

}  // namespace
}  // namespace adapt::quant
