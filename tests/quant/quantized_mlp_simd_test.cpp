#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/tensor.hpp"
#include "quant/quantized_mlp.hpp"

namespace adapt::quant {
namespace {

namespace nk = nn::kernels;

std::vector<nk::Isa> supported_isas() {
  std::vector<nk::Isa> out;
  for (int i = 0; i < nk::kIsaCount; ++i) {
    const auto isa = static_cast<nk::Isa>(i);
    if (nk::supported(isa)) out.push_back(isa);
  }
  return out;
}

/// Restores normal dispatch even when an ASSERT bails out of a test.
struct ForcedIsa {
  explicit ForcedIsa(nk::Isa isa) { nk::force_isa_for_testing(isa); }
  ~ForcedIsa() { nk::reset_forced_isa_for_testing(); }
};

std::int32_t int_in(core::Rng& rng, std::int32_t lo, std::int32_t hi) {
  return lo + static_cast<std::int32_t>(rng.uniform_index(
                  static_cast<std::uint64_t>(hi - lo) + 1));
}

/// A synthetic engine with realistic qparams: enough layers to
/// exercise the requant path between layers (every layer but the last)
/// and the float epilogue on the last.
QuantizedMlp make_engine(const std::vector<std::size_t>& widths,
                         std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<QuantizedLayer> layers;
  for (std::size_t li = 0; li + 1 < widths.size(); ++li) {
    QuantizedLayer l;
    l.in_features = widths[li];
    l.out_features = widths[li + 1];
    l.relu = li + 2 < widths.size();
    l.weight.resize(l.in_features * l.out_features);
    for (auto& w : l.weight)
      w = static_cast<std::int8_t>(int_in(rng, -127, 127));
    l.bias.resize(l.out_features);
    for (auto& b : l.bias) b = int_in(rng, -30000, 30000);
    l.weight_scales.resize(l.out_features);
    for (auto& s : l.weight_scales)
      s = static_cast<float>(rng.uniform(5e-4, 5e-3));
    l.input_q = QParams::from_range(static_cast<float>(rng.uniform(-4.0, -0.5)),
                                    static_cast<float>(rng.uniform(0.5, 4.0)));
    layers.push_back(std::move(l));
  }
  return QuantizedMlp(std::move(layers));
}

nn::Tensor random_batch(std::size_t n, std::size_t d, std::uint64_t seed) {
  core::Rng rng(seed);
  nn::Tensor x(n, d);
  for (auto& v : x.vec()) v = static_cast<float>(rng.uniform(-3.0, 3.0));
  return x;
}

void expect_bit_identical(const nn::Tensor& a, const nn::Tensor& b,
                          const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a.vec()[i], b.vec()[i]) << what << " idx=" << i;
}

TEST(QuantizedMlpSimd, ForwardBitIdenticalAcrossIsas) {
  // The paper's background-net shape, hitting the 64-wide VNNI path,
  // the 16-wide AVX2 path, and every remainder tail (13 % 16 != 0).
  const QuantizedMlp engine = make_engine({13, 256, 128, 64, 1}, 42);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{3},
                                  std::size_t{64}}) {
    const nn::Tensor x = random_batch(batch, 13, 1000 + batch);
    nn::Tensor want;
    {
      ForcedIsa forced(nk::Isa::kScalar);
      want = engine.forward(x);
    }
    for (const nk::Isa isa : supported_isas()) {
      if (isa == nk::Isa::kScalar) continue;
      ForcedIsa forced(isa);
      const nn::Tensor got = engine.forward(x);
      expect_bit_identical(got, want, nk::kernel_set(isa).name);
    }
  }
}

TEST(QuantizedMlpSimd, OddWidthsBitIdenticalAcrossIsas) {
  // Widths that are odd at every layer: in_features % vector width is
  // nonzero everywhere, so each variant's masked/scalar tails run.
  const QuantizedMlp engine = make_engine({7, 33, 17, 3}, 7);
  const nn::Tensor x = random_batch(5, 7, 555);
  nn::Tensor want;
  {
    ForcedIsa forced(nk::Isa::kScalar);
    want = engine.forward(x);
  }
  for (const nk::Isa isa : supported_isas()) {
    if (isa == nk::Isa::kScalar) continue;
    ForcedIsa forced(isa);
    expect_bit_identical(engine.forward(x), want, nk::kernel_set(isa).name);
  }
}

TEST(QuantizedMlpSimd, CrossWidthEngineInterleavingIsStable) {
  // Regression guard for the thread_local ping-pong scratch buffers in
  // forward(): one thread serving engines of different widths back to
  // back must re-size the panels per call.  A stale smaller capacity
  // would make the wide engine scribble out of bounds (ASan) or read
  // the narrow engine's leftovers (caught here as a bit difference).
  const QuantizedMlp wide = make_engine({13, 256, 128, 64, 1}, 1);
  const QuantizedMlp narrow = make_engine({4, 8, 1}, 2);
  const nn::Tensor xw = random_batch(33, 13, 10);
  const nn::Tensor xn = random_batch(65, 4, 11);

  const nn::Tensor w0 = wide.forward(xw);
  const nn::Tensor n0 = narrow.forward(xn);
  const nn::Tensor w1 = wide.forward(xw);   // After narrow ran.
  const nn::Tensor n1 = narrow.forward(xn); // After wide re-grew.
  expect_bit_identical(w1, w0, "wide after narrow");
  expect_bit_identical(n1, n0, "narrow after wide");
}

TEST(QuantizedMlpSimd, SeuBitFlipDetectedIdenticallyThroughEveryVariant) {
  // The fault layer's SEU story must survive the SIMD kernels: a
  // flipped weight bit changes the checksum (the supervisor's
  // detection channel), and the corrupted engine still computes
  // bit-identically across variants — corruption must never hide
  // behind kernel-dependent noise.
  QuantizedMlp engine = make_engine({13, 64, 32, 1}, 99);
  const nn::Tensor x = random_batch(16, 13, 3);
  const std::uint64_t checksum_before = engine.weight_checksum();

  nn::Tensor clean_want;
  {
    ForcedIsa forced(nk::Isa::kScalar);
    clean_want = engine.forward(x);
  }

  engine.flip_weight_bit(0, 5, 6);
  EXPECT_NE(engine.weight_checksum(), checksum_before);

  nn::Tensor corrupt_want;
  {
    ForcedIsa forced(nk::Isa::kScalar);
    corrupt_want = engine.forward(x);
  }
  for (const nk::Isa isa : supported_isas()) {
    if (isa == nk::Isa::kScalar) continue;
    ForcedIsa forced(isa);
    expect_bit_identical(engine.forward(x), corrupt_want,
                         nk::kernel_set(isa).name);
  }

  // Flipping the same bit back restores the digest exactly.
  engine.flip_weight_bit(0, 5, 6);
  EXPECT_EQ(engine.weight_checksum(), checksum_before);
  ForcedIsa forced(nk::Isa::kScalar);
  expect_bit_identical(engine.forward(x), clean_want, "restored weights");
}

}  // namespace
}  // namespace adapt::quant
