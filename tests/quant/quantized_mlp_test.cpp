#include "quant/quantized_mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.hpp"
#include "nn/mlp.hpp"
#include "quant/fake_quant.hpp"
#include "quant/fuse.hpp"
#include "quant/qat_io.hpp"
#include "quant/qat_linear.hpp"

namespace adapt::quant {
namespace {

nn::Tensor random_batch(std::size_t n, std::size_t d, std::uint64_t seed,
                        double lo = -2.0, double hi = 2.0) {
  core::Rng rng(seed);
  nn::Tensor x(n, d);
  for (auto& v : x.vec()) v = static_cast<float>(rng.uniform(lo, hi));
  return x;
}

/// End-to-end QAT assembly for a trained swapped-architecture model.
struct QatFixture {
  nn::Sequential qat;
  std::vector<FusedLayer> fused;

  explicit QatFixture(std::uint64_t seed, std::size_t dim = 13) {
    core::Rng rng(seed);
    nn::Sequential swapped =
        nn::build_mlp(nn::background_net_spec(dim, true), rng);
    // Calibrate batchnorm running stats.
    for (int pass = 0; pass < 6; ++pass)
      (void)swapped.forward(random_batch(64, dim, seed + 1 + pass), true);
    fused = fuse_bn(swapped);
    core::Rng qrng(seed + 99);
    qat = build_qat_model(fused, qrng);
    // Calibrate activation observers.
    for (int pass = 0; pass < 6; ++pass)
      (void)qat.forward(random_batch(64, dim, seed + 50 + pass), true);
  }
};

TEST(FakeQuantLayer, TracksRangeAndQuantizes) {
  FakeQuant fq(1.0);  // Momentum 1: range = last batch.
  nn::Tensor x(2, 2);
  x.vec() = {-1.0f, 0.5f, 2.0f, 0.0f};
  const nn::Tensor y = fq.forward(x, true);
  EXPECT_TRUE(fq.observed());
  const QParams p = fq.qparams();
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y.vec()[i], x.vec()[i], p.scale / 2 + 1e-6);
}

TEST(FakeQuantLayer, InferenceBeforeObservationIsIdentity) {
  FakeQuant fq;
  nn::Tensor x(1, 3);
  x.vec() = {1.0f, -2.0f, 3.0f};
  const nn::Tensor y = fq.forward(x, false);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_FLOAT_EQ(y.vec()[i], x.vec()[i]);
}

TEST(FakeQuantLayer, StraightThroughGradientMasksClipped) {
  FakeQuant fq;
  fq.set_range(-1.0f, 1.0f);
  nn::Tensor x(1, 3);
  x.vec() = {0.5f, 5.0f, -5.0f};  // Middle entry clipped high, last low.
  (void)fq.forward(x, true);
  nn::Tensor g(1, 3, 1.0f);
  const nn::Tensor dx = fq.backward(g);
  EXPECT_FLOAT_EQ(dx(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(dx(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(dx(0, 2), 0.0f);
}

TEST(QatLinearLayer, ForwardUsesQuantizedWeights) {
  core::Rng rng(1);
  QatLinear lin(2, 1, rng);
  nn::Tensor w(1, 2);
  w.vec() = {1.0f, 0.701f};
  lin.load_weights(w, {0.0f});
  nn::Tensor x(1, 2);
  x.vec() = {1.0f, 1.0f};
  const nn::Tensor y = lin.forward(x, false);
  // Result equals the per-channel fake-quantized weights' dot product.
  const auto qp = lin.channel_qparams();
  const float expected = qp[0].fake(1.0f) + qp[0].fake(0.701f);
  EXPECT_NEAR(y(0, 0), expected, 1e-6);
  // And differs (slightly) from the latent FP32 result.
  EXPECT_NE(y(0, 0), 1.701f);
}

TEST(QuantizedEngine, MatchesQatModelClosely) {
  QatFixture fixture(7);
  QuantizedMlp engine = export_quantized(fixture.qat);
  const nn::Tensor x = random_batch(64, 13, 1234);
  const nn::Tensor y_qat = fixture.qat.forward(x, false);
  const nn::Tensor y_int8 = engine.forward(x);
  ASSERT_EQ(y_qat.size(), y_int8.size());
  // The integer path re-quantizes activations; allow a small
  // tolerance relative to the logit spread.
  core::RunningStat spread;
  for (float v : y_qat.vec()) spread.add(v);
  const double tol = std::max(0.1, 0.15 * spread.stddev());
  for (std::size_t i = 0; i < y_qat.size(); ++i)
    EXPECT_NEAR(y_int8.vec()[i], y_qat.vec()[i], tol) << "row " << i;
}

TEST(QuantizedEngine, ApproximatesFp32Model) {
  QatFixture fixture(8);
  QuantizedMlp engine = export_quantized(fixture.qat);
  const nn::Tensor x = random_batch(128, 13, 4321);
  const nn::Tensor y_fp32 = fused_forward(fixture.fused, x);
  const nn::Tensor y_int8 = engine.forward(x);
  // Classification agreement at threshold 0 should be high.
  std::size_t agree = 0;
  for (std::size_t i = 0; i < y_fp32.rows(); ++i) {
    if ((y_fp32(i, 0) >= 0.0f) == (y_int8(i, 0) >= 0.0f)) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(y_fp32.rows()),
            0.9);
}

TEST(QuantizedEngine, ModelSizeIsQuarterOfFp32Weights) {
  QatFixture fixture(9);
  QuantizedMlp engine = export_quantized(fixture.qat);
  std::size_t fp32_weight_bytes = 0;
  for (const auto& f : fixture.fused)
    fp32_weight_bytes += 4 * f.weight.size();
  // INT8 weights are 1/4 the FP32 weights; bias/scales add a little.
  EXPECT_LT(engine.model_size_bytes(), fp32_weight_bytes / 2);
  EXPECT_GT(engine.model_size_bytes(), fp32_weight_bytes / 8);
}

TEST(QuantizedEngine, LayerMetadataPreserved) {
  QatFixture fixture(10);
  QuantizedMlp engine = export_quantized(fixture.qat);
  ASSERT_EQ(engine.layers().size(), 4u);
  EXPECT_EQ(engine.layers()[0].in_features, 13u);
  EXPECT_EQ(engine.layers()[0].out_features, 256u);
  EXPECT_TRUE(engine.layers()[0].relu);
  EXPECT_FALSE(engine.layers()[3].relu);
}

TEST(QuantizedEngine, ExportRequiresCalibration) {
  core::Rng rng(11);
  nn::Sequential swapped =
      nn::build_mlp(nn::background_net_spec(13, true), rng);
  for (int pass = 0; pass < 3; ++pass)
    (void)swapped.forward(random_batch(32, 13, 500 + pass), true);
  const auto fused = fuse_bn(swapped);
  core::Rng qrng(12);
  nn::Sequential qat = build_qat_model(fused, qrng);
  // No calibration pass: observers never saw data.
  EXPECT_THROW(export_quantized(qat), std::invalid_argument);
}

TEST(QatIo, RoundTripPreservesQuantizedBehaviour) {
  QatFixture fixture(13);
  nn::Standardizer std_;
  nn::Tensor fitdata = random_batch(64, 13, 77);
  std_.fit(fitdata);
  const std::string path = "/tmp/adaptml_qat_io_test.adqt";
  ASSERT_TRUE(save_qat_model(fixture.qat, std_,
                             {{"polar_thr_0", -0.4}, {"config_sig", 12.0}},
                             path));
  auto loaded = load_qat_model(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->metadata.at("polar_thr_0"), -0.4);
  ASSERT_TRUE(loaded->standardizer.fitted());

  QuantizedMlp original = export_quantized(fixture.qat);
  QuantizedMlp restored = export_quantized(loaded->model);
  const nn::Tensor x = random_batch(32, 13, 88);
  const nn::Tensor y0 = original.forward(x);
  const nn::Tensor y1 = restored.forward(x);
  for (std::size_t i = 0; i < y0.size(); ++i)
    EXPECT_NEAR(y0.vec()[i], y1.vec()[i], 1e-5);
  std::remove(path.c_str());
}

TEST(QatIo, MissingOrCorruptFileRejected) {
  EXPECT_FALSE(load_qat_model("/tmp/nonexistent.adqt").has_value());
}

}  // namespace
}  // namespace adapt::quant
