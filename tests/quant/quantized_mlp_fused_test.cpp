#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "quant/quantized_mlp.hpp"

namespace adapt::quant {
namespace {

/// Straightforward per-element integer inference — the definition the
/// fused kernel must reproduce bit-for-bit: int32 accumulation of
/// (q_x - zp) * q_w, bias, integer ReLU, then the single float
/// requantization multiply.
nn::Tensor reference_forward(const std::vector<QuantizedLayer>& layers,
                             const nn::Tensor& x) {
  const std::size_t n = x.rows();
  std::vector<std::uint8_t> act(n * layers.front().in_features);
  for (std::size_t i = 0; i < act.size(); ++i)
    act[i] = static_cast<std::uint8_t>(
        layers.front().input_q.quantize(x.vec()[i]));

  nn::Tensor out;
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const QuantizedLayer& layer = layers[li];
    const bool last = li + 1 == layers.size();
    std::vector<std::uint8_t> next(n * layer.out_features);
    if (last) out = nn::Tensor(n, layer.out_features);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t oc = 0; oc < layer.out_features; ++oc) {
        std::int32_t acc = layer.bias[oc];
        for (std::size_t ic = 0; ic < layer.in_features; ++ic) {
          const std::int32_t q_x = act[r * layer.in_features + ic];
          const std::int32_t q_w = layer.weight[oc * layer.in_features + ic];
          acc += (q_x - layer.input_q.zero_point) * q_w;
        }
        if (layer.relu && acc < 0) acc = 0;
        const float real = static_cast<float>(acc) * layer.input_q.scale *
                           layer.weight_scales[oc];
        if (last)
          out(r, oc) = real;
        else
          next[r * layer.out_features + oc] = static_cast<std::uint8_t>(
              layers[li + 1].input_q.quantize(real));
      }
    }
    act = std::move(next);
  }
  return out;
}

std::vector<QuantizedLayer> random_layers(
    const std::vector<std::size_t>& widths, core::Rng& rng) {
  std::vector<QuantizedLayer> layers;
  for (std::size_t li = 0; li + 1 < widths.size(); ++li) {
    QuantizedLayer l;
    l.in_features = widths[li];
    l.out_features = widths[li + 1];
    l.relu = li + 2 < widths.size();
    l.input_q = li == 0 ? QParams::from_range(-1.0f, 1.0f)
                        : QParams::from_range(0.0f, 8.0f);
    l.weight.resize(l.in_features * l.out_features);
    for (auto& w : l.weight)
      w = static_cast<std::int8_t>(rng.uniform(-127.0, 128.0));
    l.bias.resize(l.out_features);
    for (auto& b : l.bias)
      b = static_cast<std::int32_t>(rng.uniform(-500.0, 500.0));
    l.weight_scales.resize(l.out_features);
    for (auto& s : l.weight_scales)
      s = static_cast<float>(rng.uniform(0.001, 0.02));
    layers.push_back(std::move(l));
  }
  return layers;
}

nn::Tensor random_input(std::size_t n, std::size_t width, core::Rng& rng) {
  nn::Tensor x(n, width);
  for (float& v : x.vec()) v = static_cast<float>(rng.uniform(-1.2, 1.2));
  return x;
}

void expect_identical(const std::vector<std::size_t>& widths, std::size_t n) {
  core::Rng rng(0x5eed + n + widths.size());
  const auto layers = random_layers(widths, rng);
  const QuantizedMlp mlp{std::vector<QuantizedLayer>(layers)};
  const nn::Tensor x = random_input(n, widths.front(), rng);

  const nn::Tensor fused = mlp.forward(x);
  const nn::Tensor ref = reference_forward(layers, x);
  ASSERT_EQ(fused.rows(), ref.rows());
  ASSERT_EQ(fused.cols(), ref.cols());
  for (std::size_t i = 0; i < fused.rows(); ++i)
    for (std::size_t j = 0; j < fused.cols(); ++j)
      EXPECT_EQ(fused(i, j), ref(i, j))
          << "row " << i << " col " << j << " (batch " << n << ")";
}

TEST(QuantizedMlpFused, MatchesReferenceOnPaperShapes) {
  // The background net (13-256-128-64-1) and the dEta net (8-16-8-1),
  // at the paper's ~597-ring batch and at batch 1.
  expect_identical({13, 256, 128, 64, 1}, 597);
  expect_identical({13, 256, 128, 64, 1}, 1);
  expect_identical({8, 16, 8, 1}, 64);
}

TEST(QuantizedMlpFused, MatchesReferenceOnOddShapes) {
  // Widths off the 4-channel blocking grid exercise the remainder
  // loop; widening layers exercise the ping-pong buffer sizing.
  expect_identical({3, 7, 5}, 17);
  expect_identical({1, 1}, 1);
  expect_identical({5, 33, 2}, 3);
  expect_identical({4, 64}, 9);  // Single layer, no ReLU, no requant.
}

TEST(QuantizedMlpFused, RepeatedForwardIsStable) {
  // The once-per-forward buffers must not leak state between calls.
  core::Rng rng(99);
  const auto layers = random_layers({13, 32, 8, 1}, rng);
  const QuantizedMlp mlp{std::vector<QuantizedLayer>(layers)};
  const nn::Tensor x = random_input(21, 13, rng);
  const nn::Tensor first = mlp.forward(x);
  const nn::Tensor again = mlp.forward(x);
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first.vec()[i], again.vec()[i]);
}

}  // namespace
}  // namespace adapt::quant
