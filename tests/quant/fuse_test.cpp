#include "quant/fuse.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"

namespace adapt::quant {
namespace {

/// Train-mode forward passes to give batchnorm non-trivial running
/// statistics, then return a fresh random batch.
nn::Tensor calibrate(nn::Sequential& model, std::size_t dim,
                     std::uint64_t seed) {
  core::Rng rng(seed);
  for (int pass = 0; pass < 5; ++pass) {
    nn::Tensor x(64, dim);
    for (auto& v : x.vec()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
    (void)model.forward(x, true);
  }
  nn::Tensor x(16, dim);
  for (auto& v : x.vec()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  return x;
}

TEST(FuseBn, FusedModelMatchesOriginalInference) {
  core::Rng rng(1);
  nn::Sequential model =
      nn::build_mlp(nn::background_net_spec(13, /*swap_bn_fc=*/true), rng);
  const nn::Tensor x = calibrate(model, 13, 2);

  const nn::Tensor y_ref = model.forward(x, false);
  const auto fused = fuse_bn(model);
  const nn::Tensor y_fused = fused_forward(fused, x);

  ASSERT_EQ(y_ref.size(), y_fused.size());
  for (std::size_t i = 0; i < y_ref.size(); ++i)
    EXPECT_NEAR(y_ref.vec()[i], y_fused.vec()[i], 2e-4)
        << "output " << i;
}

TEST(FuseBn, StageStructureMatchesArchitecture) {
  core::Rng rng(3);
  nn::Sequential model =
      nn::build_mlp(nn::background_net_spec(13, true), rng);
  (void)calibrate(model, 13, 4);
  const auto fused = fuse_bn(model);
  // Three hidden blocks + final linear.
  ASSERT_EQ(fused.size(), 4u);
  EXPECT_EQ(fused[0].in_features(), 13u);
  EXPECT_EQ(fused[0].out_features(), 256u);
  EXPECT_TRUE(fused[0].relu);
  EXPECT_TRUE(fused[1].relu);
  EXPECT_TRUE(fused[2].relu);
  EXPECT_EQ(fused[3].out_features(), 1u);
  EXPECT_FALSE(fused[3].relu);
}

TEST(FuseBn, PlainLinearStackPassesThrough) {
  core::Rng rng(5);
  nn::Sequential model;
  model.add(std::make_unique<nn::Linear>(4, 3, rng));
  model.add(std::make_unique<nn::ReLU>());
  model.add(std::make_unique<nn::Linear>(3, 1, rng));
  const auto fused = fuse_bn(model);
  ASSERT_EQ(fused.size(), 2u);
  nn::Tensor x(5, 4, 0.3f);
  const nn::Tensor y_ref = model.forward(x, false);
  const nn::Tensor y_fused = fused_forward(fused, x);
  for (std::size_t i = 0; i < y_ref.size(); ++i)
    EXPECT_NEAR(y_ref.vec()[i], y_fused.vec()[i], 1e-5);
}

TEST(FuseBn, RejectsBnFirstArchitecture) {
  // The paper's original block order (BN before FC) cannot fuse —
  // exactly why the layer-swapped architecture exists.
  core::Rng rng(6);
  nn::Sequential model =
      nn::build_mlp(nn::background_net_spec(13, /*swap_bn_fc=*/false), rng);
  EXPECT_THROW(fuse_bn(model), std::invalid_argument);
}

TEST(FuseBn, FoldedWeightsReflectBnScale) {
  core::Rng rng(7);
  nn::Sequential model;
  auto lin = std::make_unique<nn::Linear>(2, 2, rng);
  lin->weight().value.vec() = {1.0f, 0.0f, 0.0f, 1.0f};
  lin->bias().value.vec() = {0.0f, 0.0f};
  auto bn = std::make_unique<nn::BatchNorm1d>(2);
  bn->gamma().value.vec() = {2.0f, 0.5f};
  bn->beta().value.vec() = {1.0f, -1.0f};
  bn->running_mean() = {0.0f, 0.0f};
  bn->running_var() = {1.0f, 1.0f};
  model.add(std::move(lin));
  model.add(std::move(bn));

  const auto fused = fuse_bn(model);
  ASSERT_EQ(fused.size(), 1u);
  // With unit variance and zero mean: W' = gamma * W, b' = beta
  // (up to the 1/sqrt(1+eps) factor ~ 1).
  EXPECT_NEAR(fused[0].weight(0, 0), 2.0f, 1e-4);
  EXPECT_NEAR(fused[0].weight(1, 1), 0.5f, 1e-4);
  EXPECT_NEAR(fused[0].bias[0], 1.0f, 1e-4);
  EXPECT_NEAR(fused[0].bias[1], -1.0f, 1e-4);
}

}  // namespace
}  // namespace adapt::quant
