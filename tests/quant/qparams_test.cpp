#include "quant/qparams.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"

namespace adapt::quant {
namespace {

TEST(QParams, RangeIncludesZero) {
  // A strictly positive range must be widened to make 0 exactly
  // representable (PyTorch convention).
  const QParams p = QParams::from_range(2.0f, 6.0f);
  EXPECT_EQ(p.quantize(0.0f), p.zero_point);
  EXPECT_NEAR(p.dequantize(p.zero_point), 0.0f, 1e-7);
}

TEST(QParams, QuantizeDequantizeBoundedError) {
  const QParams p = QParams::from_range(-3.0f, 5.0f);
  for (float x = -3.0f; x <= 5.0f; x += 0.37f) {
    const float back = p.fake(x);
    EXPECT_NEAR(back, x, p.scale / 2.0f + 1e-6f);
  }
}

TEST(QParams, ClampsOutOfRange) {
  const QParams p = QParams::from_range(0.0f, 1.0f);
  EXPECT_EQ(p.quantize(100.0f), QParams::kQMax);
  EXPECT_EQ(p.quantize(-100.0f), QParams::kQMin);
}

TEST(QParams, DegenerateRangeIsSafe) {
  const QParams p = QParams::from_range(0.0f, 0.0f);
  EXPECT_EQ(p.quantize(0.0f), 0);
  EXPECT_FLOAT_EQ(p.fake(0.0f), 0.0f);
}

TEST(QParams, ScaleCoversRange) {
  const QParams p = QParams::from_range(-1.0f, 3.0f);
  EXPECT_NEAR(p.max_value() - p.min_value(), 4.0f, 2.0f * p.scale);
  EXPECT_LE(p.min_value(), -1.0f + p.scale);
  EXPECT_GE(p.max_value(), 3.0f - p.scale);
}

TEST(ChannelQParams, SymmetricAroundZero) {
  const ChannelQParams p = ChannelQParams::from_max_abs(2.54f);
  EXPECT_EQ(p.quantize(2.54f), 127);
  EXPECT_EQ(p.quantize(-2.54f), -127);
  EXPECT_EQ(p.quantize(0.0f), 0);
}

TEST(ChannelQParams, RoundTripBoundedError) {
  const ChannelQParams p = ChannelQParams::from_max_abs(1.0f);
  for (float x = -1.0f; x <= 1.0f; x += 0.013f) {
    EXPECT_NEAR(p.fake(x), x, p.scale / 2.0f + 1e-7f);
  }
}

TEST(ChannelQParams, ZeroWeightRowIsSafe) {
  const ChannelQParams p = ChannelQParams::from_max_abs(0.0f);
  EXPECT_EQ(p.quantize(0.0f), 0);
}

TEST(WeightQParams, PerChannelScalesMatchRowMaxima) {
  nn::Tensor w(2, 3);
  w.vec() = {0.1f, -0.4f, 0.2f, 1.0f, -2.0f, 0.5f};
  const auto qp = weight_qparams(w);
  ASSERT_EQ(qp.size(), 2u);
  EXPECT_NEAR(qp[0].scale, 0.4f / 127.0f, 1e-7);
  EXPECT_NEAR(qp[1].scale, 2.0f / 127.0f, 1e-7);
}

TEST(WeightQParams, QuantizationErrorWithinHalfScale) {
  core::Rng rng(1);
  nn::Tensor w(8, 16);
  w.he_init(16, rng);
  const auto qp = weight_qparams(w);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      EXPECT_NEAR(qp[r].fake(w(r, c)), w(r, c), qp[r].scale / 2 + 1e-7);
    }
  }
}

}  // namespace
}  // namespace adapt::quant
