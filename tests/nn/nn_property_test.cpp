/// Parameterized learning properties: the training stack must fit
/// known functions across architectures, batch sizes, and losses, and
/// be exactly reproducible given a seed.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"

namespace adapt::nn {
namespace {

Dataset xor_like(std::size_t n, std::uint64_t seed) {
  // Nonlinearly separable: label = sign(x0 * x1).
  core::Rng rng(seed);
  Dataset ds;
  ds.x = Tensor(n, 2);
  for (std::size_t r = 0; r < n; ++r) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    ds.x(r, 0) = static_cast<float>(a);
    ds.x(r, 1) = static_cast<float>(b);
    ds.y.push_back(a * b > 0.0 ? 1.0f : 0.0f);
  }
  return ds;
}

class BatchSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchSizeSweep, LearnsNonlinearBoundary) {
  const std::size_t batch = GetParam();
  core::Rng rng(batch * 31 + 7);
  Sequential model;
  model.add(std::make_unique<Linear>(2, 16, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Linear>(16, 1, rng));
  TrainConfig cfg;
  cfg.batch_size = batch;
  cfg.max_epochs = 120;
  cfg.patience = 120;
  cfg.sgd.learning_rate = 0.15;
  cfg.sgd.momentum = 0.9;
  Trainer trainer(model, bce_with_logits, cfg);
  trainer.fit(xor_like(800, 1), xor_like(200, 2), rng);

  const Dataset test = xor_like(400, 3);
  const Tensor out = model.forward(test.x, false);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i)
    if ((out(i, 0) > 0.0f) == (test.y[i] > 0.5f)) ++correct;
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()),
            0.9)
      << "batch size " << batch;
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSizeSweep,
                         ::testing::Values(16, 64, 256));

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, TrainingIsBitReproducible) {
  const std::uint64_t seed = GetParam();
  const auto train_once = [&] {
    core::Rng rng(seed);
    Sequential model = build_mlp(deta_net_spec(4), rng);
    TrainConfig cfg;
    cfg.batch_size = 32;
    cfg.max_epochs = 5;
    cfg.patience = 5;
    Trainer trainer(model, mse, cfg);
    core::Rng drng(seed + 1);
    Dataset data;
    data.x = Tensor(200, 4);
    for (std::size_t r = 0; r < 200; ++r) {
      double sum = 0.0;
      for (std::size_t c = 0; c < 4; ++c) {
        const double v = drng.uniform(-1.0, 1.0);
        data.x(r, c) = static_cast<float>(v);
        sum += v;
      }
      data.y.push_back(static_cast<float>(sum));
    }
    core::Rng srng(seed + 2);
    const SplitResult split_data = split(data, 0.8, srng);
    core::Rng frng(seed + 3);
    trainer.fit(split_data.first, split_data.second, frng);
    Tensor probe(1, 4, 0.25f);
    return model.forward(probe, false)(0, 0);
  };
  EXPECT_FLOAT_EQ(train_once(), train_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1u, 42u, 777u));

class DepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(DepthSweep, DeepStacksBackpropagateFiniteGradients) {
  const int depth = GetParam();
  core::Rng rng(static_cast<std::uint64_t>(depth));
  Sequential model;
  std::size_t dim = 6;
  for (int i = 0; i < depth; ++i) {
    model.add(std::make_unique<BatchNorm1d>(dim));
    model.add(std::make_unique<Linear>(dim, 6, rng));
    model.add(std::make_unique<ReLU>());
    dim = 6;
  }
  model.add(std::make_unique<Linear>(dim, 1, rng));

  Tensor x(8, 6);
  core::Rng xr(5);
  for (auto& v : x.vec()) v = static_cast<float>(xr.uniform(-1.0, 1.0));
  model.zero_grad();
  (void)model.forward(x, true);
  Tensor g(8, 1, 1.0f);
  const Tensor dx = model.backward(g);
  for (float v : dx.vec()) ASSERT_TRUE(std::isfinite(v));
  for (Param* p : model.params())
    for (float v : p->grad.vec()) ASSERT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep, ::testing::Values(1, 4, 10));

}  // namespace
}  // namespace adapt::nn
