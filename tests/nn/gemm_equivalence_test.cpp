#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/rng.hpp"
#include "nn/tensor.hpp"

namespace adapt::nn {
namespace {

/// Shapes chosen to hit every kernel path: single element, batch-1
/// rows, row-block remainders (n % 4), column-chunk remainders
/// (m % 8), column tiles (m past the L1 heuristic), and deep k.
struct Shape {
  std::size_t n, k, m;
};

const std::vector<Shape>& shapes() {
  static const std::vector<Shape> s = {
      {1, 1, 1},   {1, 13, 64},  {3, 5, 7},    {17, 9, 33},
      {4, 8, 8},   {5, 3, 9},    {2, 600, 11}, {64, 13, 600},
      {7, 1, 257}, {597, 13, 256},
  };
  return s;
}

Tensor random_tensor(std::size_t r, std::size_t c, core::Rng& rng) {
  Tensor t(r, c);
  for (float& v : t.vec()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

/// Element-wise comparison against a double-precision reference; the
/// tolerance covers float rounding (including FMA contraction) without
/// letting an indexing or packing bug through.
void expect_matches(const Tensor& c, const std::vector<double>& ref,
                    std::size_t n, std::size_t m, const char* what) {
  ASSERT_EQ(c.rows(), n) << what;
  ASSERT_EQ(c.cols(), m) << what;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double r = ref[i * m + j];
      const double tol = 1e-5 * std::max(1.0, std::abs(r));
      EXPECT_NEAR(c(i, j), r, tol)
          << what << " mismatch at (" << i << ", " << j << ")";
    }
  }
}

TEST(GemmEquivalence, AbtMatchesNaive) {
  core::Rng rng(11);
  for (const Shape& s : shapes()) {
    const Tensor a = random_tensor(s.n, s.k, rng);
    const Tensor b = random_tensor(s.m, s.k, rng);
    Tensor c;
    matmul_abt(a, b, c);
    std::vector<double> ref(s.n * s.m, 0.0);
    for (std::size_t i = 0; i < s.n; ++i)
      for (std::size_t j = 0; j < s.m; ++j) {
        double acc = 0.0;
        for (std::size_t t = 0; t < s.k; ++t)
          acc += static_cast<double>(a(i, t)) * b(j, t);
        ref[i * s.m + j] = acc;
      }
    expect_matches(c, ref, s.n, s.m, "matmul_abt");
  }
}

TEST(GemmEquivalence, AbMatchesNaive) {
  core::Rng rng(12);
  for (const Shape& s : shapes()) {
    const Tensor a = random_tensor(s.n, s.k, rng);
    const Tensor b = random_tensor(s.k, s.m, rng);
    Tensor c;
    matmul_ab(a, b, c);
    std::vector<double> ref(s.n * s.m, 0.0);
    for (std::size_t i = 0; i < s.n; ++i)
      for (std::size_t j = 0; j < s.m; ++j) {
        double acc = 0.0;
        for (std::size_t t = 0; t < s.k; ++t)
          acc += static_cast<double>(a(i, t)) * b(t, j);
        ref[i * s.m + j] = acc;
      }
    expect_matches(c, ref, s.n, s.m, "matmul_ab");
  }
}

TEST(GemmEquivalence, AtbMatchesNaive) {
  core::Rng rng(13);
  for (const Shape& s : shapes()) {
    const Tensor a = random_tensor(s.k, s.n, rng);
    const Tensor b = random_tensor(s.k, s.m, rng);
    Tensor c;
    matmul_atb(a, b, c);
    std::vector<double> ref(s.n * s.m, 0.0);
    for (std::size_t i = 0; i < s.n; ++i)
      for (std::size_t j = 0; j < s.m; ++j) {
        double acc = 0.0;
        for (std::size_t t = 0; t < s.k; ++t)
          acc += static_cast<double>(a(t, i)) * b(t, j);
        ref[i * s.m + j] = acc;
      }
    expect_matches(c, ref, s.n, s.m, "matmul_atb");
  }
}

TEST(GemmEquivalence, ReusedOutputTensorIsOverwritten) {
  // The kernels overwrite (not accumulate into) C, including when the
  // caller hands back a correctly shaped tensor full of stale values.
  core::Rng rng(14);
  const Tensor a = random_tensor(6, 10, rng);
  const Tensor b = random_tensor(9, 10, rng);
  Tensor fresh;
  matmul_abt(a, b, fresh);
  Tensor stale(6, 9, 123.0f);
  matmul_abt(a, b, stale);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 9; ++j)
      EXPECT_EQ(fresh(i, j), stale(i, j)) << "at (" << i << ", " << j << ")";
}

TEST(GemmEquivalence, EmptyAndDegenerateShapes) {
  Tensor a(0, 5), b(3, 5), c;
  matmul_abt(a, b, c);
  EXPECT_EQ(c.rows(), 0u);
  EXPECT_EQ(c.cols(), 3u);

  // k = 0: the product is all zeros, not garbage.
  Tensor a0(2, 0), b0(4, 0), c0;
  matmul_abt(a0, b0, c0);
  ASSERT_EQ(c0.rows(), 2u);
  ASSERT_EQ(c0.cols(), 4u);
  for (float v : c0.vec()) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace adapt::nn
