#include "nn/data.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace adapt::nn {
namespace {

Dataset toy_dataset(std::size_t n, std::size_t d = 2) {
  Dataset ds;
  ds.x = Tensor(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c)
      ds.x(r, c) = static_cast<float>(r * 10 + c);
    ds.y.push_back(static_cast<float>(r));
  }
  return ds;
}

TEST(DatasetTest, SubsetSelectsRows) {
  const Dataset ds = toy_dataset(5);
  const Dataset sub = ds.subset({4, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_FLOAT_EQ(sub.x(0, 0), 40.0f);
  EXPECT_FLOAT_EQ(sub.y[1], 0.0f);
  EXPECT_THROW(ds.subset({7}), std::invalid_argument);
}

TEST(SplitTest, FractionAndDisjointness) {
  const Dataset ds = toy_dataset(100);
  core::Rng rng(1);
  const SplitResult s = split(ds, 0.8, rng);
  EXPECT_EQ(s.first.size(), 80u);
  EXPECT_EQ(s.second.size(), 20u);
  std::set<float> first_labels(s.first.y.begin(), s.first.y.end());
  for (float label : s.second.y) {
    EXPECT_EQ(first_labels.count(label), 0u);
  }
}

TEST(SplitTest, ShufflesRows) {
  const Dataset ds = toy_dataset(100);
  core::Rng rng(2);
  const SplitResult s = split(ds, 0.5, rng);
  // The first half should not be exactly rows 0..49.
  bool any_high = false;
  for (float label : s.first.y)
    if (label >= 50.0f) any_high = true;
  EXPECT_TRUE(any_high);
}

TEST(SplitTest, RejectsDegenerateFractions) {
  const Dataset ds = toy_dataset(10);
  core::Rng rng(3);
  EXPECT_THROW(split(ds, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(split(ds, 1.0, rng), std::invalid_argument);
}

TEST(StandardizerTest, ZeroMeanUnitVariance) {
  core::Rng rng(4);
  Tensor x(500, 3);
  for (std::size_t r = 0; r < 500; ++r) {
    x(r, 0) = static_cast<float>(rng.normal(10.0, 3.0));
    x(r, 1) = static_cast<float>(rng.normal(-5.0, 0.5));
    x(r, 2) = static_cast<float>(rng.normal(0.0, 1.0));
  }
  Standardizer s;
  s.fit(x);
  const Tensor t = s.transform(x);
  for (std::size_t c = 0; c < 3; ++c) {
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t r = 0; r < 500; ++r) mean += t(r, c);
    mean /= 500.0;
    for (std::size_t r = 0; r < 500; ++r) {
      const double d = t(r, c) - mean;
      var += d * d;
    }
    var /= 500.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(StandardizerTest, ConstantFeaturePassesThrough) {
  Tensor x(10, 1, 7.0f);
  Standardizer s;
  s.fit(x);
  const Tensor t = s.transform(x);
  // Centered but not exploded by a zero variance.
  for (std::size_t r = 0; r < 10; ++r) EXPECT_FLOAT_EQ(t(r, 0), 0.0f);
}

TEST(StandardizerTest, UnfittedThrows) {
  Standardizer s;
  Tensor x(2, 2);
  EXPECT_THROW(s.transform(x), std::invalid_argument);
}

TEST(StandardizerTest, SetRestoresState) {
  Standardizer s;
  s.set({1.0f, 2.0f}, {0.5f, 0.25f});
  ASSERT_TRUE(s.fitted());
  Tensor x(1, 2);
  x(0, 0) = 3.0f;
  x(0, 1) = 6.0f;
  const Tensor t = s.transform(x);
  EXPECT_FLOAT_EQ(t(0, 0), (3.0f - 1.0f) * 0.5f);
  EXPECT_FLOAT_EQ(t(0, 1), (6.0f - 2.0f) * 0.25f);
}

TEST(DataLoaderTest, CoversEveryRowExactlyOnce) {
  const Dataset ds = toy_dataset(17);
  core::Rng rng(5);
  DataLoader loader(ds, 5, rng);
  EXPECT_EQ(loader.n_batches(), 4u);  // ceil(17/5).
  std::multiset<float> seen;
  Tensor xb;
  std::vector<float> yb;
  std::size_t batches = 0;
  while (loader.next(xb, yb)) {
    ++batches;
    EXPECT_LE(xb.rows(), 5u);
    for (float y : yb) seen.insert(y);
  }
  EXPECT_EQ(batches, 4u);
  EXPECT_EQ(seen.size(), 17u);
  for (std::size_t r = 0; r < 17; ++r)
    EXPECT_EQ(seen.count(static_cast<float>(r)), 1u);
}

TEST(DataLoaderTest, ResetReshuffles) {
  const Dataset ds = toy_dataset(64);
  core::Rng rng(6);
  DataLoader loader(ds, 64, rng);
  Tensor xb;
  std::vector<float> y1;
  std::vector<float> y2;
  loader.next(xb, y1);
  loader.reset();
  loader.next(xb, y2);
  EXPECT_NE(y1, y2);  // Different permutations with high probability.
}

TEST(DataLoaderTest, FeatureRowsStayAlignedWithLabels) {
  const Dataset ds = toy_dataset(30);
  core::Rng rng(7);
  DataLoader loader(ds, 7, rng);
  Tensor xb;
  std::vector<float> yb;
  while (loader.next(xb, yb)) {
    for (std::size_t i = 0; i < yb.size(); ++i) {
      // Row r of the toy set has x(r, 0) = 10 r and y = r.
      EXPECT_FLOAT_EQ(xb(i, 0), yb[i] * 10.0f);
    }
  }
}

TEST(DataLoaderTest, RejectsEmptyAndZeroBatch) {
  Dataset empty;
  core::Rng rng(8);
  EXPECT_THROW(DataLoader(empty, 4, rng), std::invalid_argument);
  const Dataset ds = toy_dataset(4);
  EXPECT_THROW(DataLoader(ds, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::nn
