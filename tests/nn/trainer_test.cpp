#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"

namespace adapt::nn {
namespace {

/// Linearly separable binary dataset: label = x0 + x1 > 0.
Dataset separable(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  Dataset ds;
  ds.x = Tensor(n, 2);
  for (std::size_t r = 0; r < n; ++r) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    ds.x(r, 0) = static_cast<float>(a);
    ds.x(r, 1) = static_cast<float>(b);
    ds.y.push_back(a + b > 0.0 ? 1.0f : 0.0f);
  }
  return ds;
}

/// Noisy linear regression target: y = 2 x0 - x1 + noise.
Dataset regression(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  Dataset ds;
  ds.x = Tensor(n, 2);
  for (std::size_t r = 0; r < n; ++r) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    ds.x(r, 0) = static_cast<float>(a);
    ds.x(r, 1) = static_cast<float>(b);
    ds.y.push_back(static_cast<float>(2.0 * a - b + rng.normal(0.0, 0.01)));
  }
  return ds;
}

TEST(Trainer, LearnsSeparableClassification) {
  core::Rng rng(1);
  Sequential model;
  model.add(std::make_unique<Linear>(2, 8, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Linear>(8, 1, rng));

  TrainConfig cfg;
  cfg.batch_size = 32;
  cfg.max_epochs = 60;
  cfg.patience = 60;
  cfg.sgd.learning_rate = 0.1;
  cfg.sgd.momentum = 0.9;
  Trainer trainer(model, bce_with_logits, cfg);
  const Dataset train = separable(600, 2);
  const Dataset val = separable(150, 3);
  const TrainReport report = trainer.fit(train, val, rng);
  EXPECT_LT(report.best_val_loss, 0.1);

  // Accuracy on fresh data.
  const Dataset test = separable(300, 4);
  const Tensor out = model.forward(test.x, false);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const bool positive = out(i, 0) > 0.0f;
    if (positive == (test.y[i] > 0.5f)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()),
            0.95);
}

TEST(Trainer, LearnsLinearRegression) {
  core::Rng rng(5);
  Sequential model;
  model.add(std::make_unique<Linear>(2, 1, rng));
  TrainConfig cfg;
  cfg.batch_size = 32;
  cfg.max_epochs = 80;
  cfg.patience = 80;
  cfg.sgd.learning_rate = 0.1;
  cfg.sgd.momentum = 0.9;
  Trainer trainer(model, mse, cfg);
  const TrainReport report =
      trainer.fit(regression(500, 6), regression(100, 7), rng);
  EXPECT_LT(report.best_val_loss, 0.01);
}

TEST(Trainer, EarlyStoppingTriggersAndRestoresBest) {
  core::Rng rng(8);
  Sequential model;
  model.add(std::make_unique<Linear>(2, 4, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Linear>(4, 1, rng));
  TrainConfig cfg;
  cfg.batch_size = 16;
  cfg.max_epochs = 100;
  cfg.patience = 3;
  cfg.sgd.learning_rate = 0.8;  // Deliberately unstable: val loss will
                                // bounce, triggering early stop.
  Trainer trainer(model, mse, cfg);
  const TrainReport report =
      trainer.fit(regression(200, 9), regression(60, 10), rng);
  EXPECT_LE(report.epochs_run, cfg.max_epochs);
  // The restored model evaluates at (or very near) the best recorded
  // validation loss.
  const double val_now = trainer.evaluate(regression(60, 10));
  EXPECT_NEAR(val_now, report.best_val_loss, 0.3 * report.best_val_loss + 0.05);
}

TEST(Trainer, LossHistoriesHaveOneEntryPerEpoch) {
  core::Rng rng(11);
  Sequential model;
  model.add(std::make_unique<Linear>(2, 1, rng));
  TrainConfig cfg;
  cfg.batch_size = 32;
  cfg.max_epochs = 5;
  cfg.patience = 5;
  Trainer trainer(model, mse, cfg);
  const TrainReport report =
      trainer.fit(regression(100, 12), regression(40, 13), rng);
  EXPECT_EQ(report.train_losses.size(), report.epochs_run);
  EXPECT_EQ(report.val_losses.size(), report.epochs_run);
}

TEST(Trainer, PaperArchitecturesTrainEndToEnd) {
  // Smoke check that the exact Fig. 5 architectures (both networks,
  // both block orders) train without shape errors and reduce loss.
  core::Rng rng(14);
  for (const bool swapped : {false, true}) {
    Sequential model = build_mlp(background_net_spec(13, swapped), rng);
    TrainConfig cfg;
    cfg.batch_size = 64;
    cfg.max_epochs = 3;
    cfg.patience = 3;
    cfg.sgd.learning_rate = 0.01;
    Trainer trainer(model, bce_with_logits, cfg);

    core::Rng drng(15);
    Dataset train;
    train.x = Tensor(256, 13);
    for (std::size_t r = 0; r < 256; ++r) {
      double sum = 0.0;
      for (std::size_t c = 0; c < 13; ++c) {
        const double v = drng.uniform(-1.0, 1.0);
        train.x(r, c) = static_cast<float>(v);
        sum += v;
      }
      train.y.push_back(sum > 0.0 ? 1.0f : 0.0f);
    }
    core::Rng srng(16);
    const SplitResult s = split(train, 0.8, srng);
    const TrainReport report = trainer.fit(s.first, s.second, rng);
    EXPECT_GT(report.epochs_run, 0u);
    EXPECT_LT(report.train_losses.back(), report.train_losses.front() + 0.1);
  }
}


TEST(Trainer, AdamOptimizerLearnsRegression) {
  core::Rng rng(20);
  Sequential model;
  model.add(std::make_unique<Linear>(2, 1, rng));
  TrainConfig cfg;
  cfg.batch_size = 32;
  cfg.max_epochs = 40;
  cfg.patience = 40;
  cfg.optimizer = TrainConfig::Optimizer::kAdam;
  cfg.adam.learning_rate = 0.02;
  Trainer trainer(model, mse, cfg);
  const TrainReport report =
      trainer.fit(regression(500, 21), regression(100, 22), rng);
  EXPECT_LT(report.best_val_loss, 0.01);
}

TEST(Trainer, AdamConvergesFasterThanSgdOnThisProblem) {
  // The optimizer ablation the Adam implementation exists for: at a
  // fixed small epoch budget, Adam reaches a lower validation loss on
  // the ill-scaled toy regression below (feature scales differ 100x,
  // which plain SGD struggles with at a single learning rate).
  const auto make_illscaled = [](std::size_t n, std::uint64_t seed) {
    core::Rng rng(seed);
    Dataset ds;
    ds.x = Tensor(n, 2);
    for (std::size_t r = 0; r < n; ++r) {
      const double a = rng.uniform(-1.0, 1.0);
      const double b = rng.uniform(-0.01, 0.01);
      ds.x(r, 0) = static_cast<float>(a);
      ds.x(r, 1) = static_cast<float>(b);
      ds.y.push_back(static_cast<float>(a + 100.0 * b));
    }
    return ds;
  };
  const auto best_val = [&](TrainConfig::Optimizer opt) {
    core::Rng rng(23);
    Sequential model;
    model.add(std::make_unique<Linear>(2, 1, rng));
    TrainConfig cfg;
    cfg.batch_size = 32;
    cfg.max_epochs = 12;
    cfg.patience = 12;
    cfg.optimizer = opt;
    cfg.sgd.learning_rate = 0.05;
    cfg.adam.learning_rate = 0.05;
    Trainer trainer(model, mse, cfg);
    core::Rng frng(24);
    return trainer
        .fit(make_illscaled(400, 25), make_illscaled(100, 26), frng)
        .best_val_loss;
  };
  EXPECT_LT(best_val(TrainConfig::Optimizer::kAdam),
            best_val(TrainConfig::Optimizer::kSgd));
}

TEST(Trainer, RejectsBatchSizeOne) {
  core::Rng rng(17);
  Sequential model;
  model.add(std::make_unique<Linear>(2, 1, rng));
  TrainConfig cfg;
  cfg.batch_size = 1;
  EXPECT_THROW(Trainer(model, mse, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::nn
