#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace adapt::nn {
namespace {

TEST(BceWithLogits, KnownValues) {
  Tensor logits(2, 1);
  logits(0, 0) = 0.0f;   // p = 0.5.
  logits(1, 0) = 0.0f;
  const LossResult r = bce_with_logits(logits, {1.0f, 0.0f});
  EXPECT_NEAR(r.value, std::log(2.0), 1e-6);
  // Gradient = (sigmoid(z) - t) / n.
  EXPECT_NEAR(r.grad(0, 0), (0.5 - 1.0) / 2.0, 1e-6);
  EXPECT_NEAR(r.grad(1, 0), (0.5 - 0.0) / 2.0, 1e-6);
}

TEST(BceWithLogits, ConfidentCorrectIsNearZero) {
  Tensor logits(1, 1);
  logits(0, 0) = 20.0f;
  EXPECT_NEAR(bce_with_logits(logits, {1.0f}).value, 0.0, 1e-6);
}

TEST(BceWithLogits, ConfidentWrongIsLinearInLogit) {
  Tensor logits(1, 1);
  logits(0, 0) = 30.0f;
  EXPECT_NEAR(bce_with_logits(logits, {0.0f}).value, 30.0, 1e-4);
}

TEST(BceWithLogits, StableAtExtremeLogits) {
  Tensor logits(2, 1);
  logits(0, 0) = 500.0f;
  logits(1, 0) = -500.0f;
  const LossResult r = bce_with_logits(logits, {0.0f, 1.0f});
  EXPECT_TRUE(std::isfinite(r.value));
  EXPECT_TRUE(std::isfinite(r.grad(0, 0)));
}

TEST(BceWithLogits, GradientMatchesFiniteDifference) {
  Tensor logits(3, 1);
  logits.vec() = {0.7f, -1.2f, 2.5f};
  const std::vector<float> targets{1.0f, 0.0f, 1.0f};
  const LossResult r = bce_with_logits(logits, targets);
  const double eps = 1e-4;
  for (std::size_t i = 0; i < 3; ++i) {
    Tensor lp = logits;
    lp.vec()[i] += static_cast<float>(eps);
    Tensor lm = logits;
    lm.vec()[i] -= static_cast<float>(eps);
    const double fd = (bce_with_logits(lp, targets).value -
                       bce_with_logits(lm, targets).value) /
                      (2.0 * eps);
    EXPECT_NEAR(r.grad(i, 0), fd, 1e-4);
  }
}

TEST(BceWithLogits, ValidatesShapes) {
  Tensor logits(2, 2);
  EXPECT_THROW(bce_with_logits(logits, {1.0f, 0.0f}),
               std::invalid_argument);
  Tensor ok(2, 1);
  EXPECT_THROW(bce_with_logits(ok, {1.0f}), std::invalid_argument);
}

TEST(Mse, KnownValueAndGradient) {
  Tensor pred(2, 1);
  pred(0, 0) = 1.0f;
  pred(1, 0) = 3.0f;
  const LossResult r = mse(pred, {0.0f, 1.0f});
  // ((1)^2 + (2)^2) / 2 = 2.5.
  EXPECT_NEAR(r.value, 2.5, 1e-6);
  EXPECT_NEAR(r.grad(0, 0), 2.0 * 1.0 / 2.0, 1e-6);
  EXPECT_NEAR(r.grad(1, 0), 2.0 * 2.0 / 2.0, 1e-6);
}

TEST(Mse, ZeroAtPerfectPrediction) {
  Tensor pred(3, 1);
  pred.vec() = {1.0f, -2.0f, 0.5f};
  const LossResult r = mse(pred, {1.0f, -2.0f, 0.5f});
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(Sgd, PlainStepIsScaledGradient) {
  Param p;
  p.value = Tensor(1, 2);
  p.value.vec() = {1.0f, 2.0f};
  p.zero_grad();
  p.grad.vec() = {0.5f, -0.5f};
  SgdConfig cfg;
  cfg.learning_rate = 0.1;
  cfg.momentum = 0.0;
  Sgd opt({&p}, cfg);
  opt.step();
  EXPECT_NEAR(p.value(0, 0), 1.0f - 0.1f * 0.5f, 1e-6);
  EXPECT_NEAR(p.value(0, 1), 2.0f + 0.1f * 0.5f, 1e-6);
}

TEST(Sgd, MomentumAcceleratesRepeatedGradients) {
  Param p;
  p.value = Tensor(1, 1);
  p.value(0, 0) = 0.0f;
  p.zero_grad();
  p.grad(0, 0) = 1.0f;
  SgdConfig cfg;
  cfg.learning_rate = 1.0;
  cfg.momentum = 0.5;
  Sgd opt({&p}, cfg);
  opt.step();  // v = 1, x = -1.
  opt.step();  // v = 1.5, x = -2.5.
  EXPECT_NEAR(p.value(0, 0), -2.5f, 1e-6);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Param p;
  p.value = Tensor(1, 1);
  p.value(0, 0) = 10.0f;
  p.zero_grad();  // Zero gradient: only decay acts.
  SgdConfig cfg;
  cfg.learning_rate = 0.1;
  cfg.momentum = 0.0;
  cfg.weight_decay = 0.1;
  Sgd opt({&p}, cfg);
  opt.step();
  EXPECT_NEAR(p.value(0, 0), 10.0f - 0.1f * (0.1f * 10.0f), 1e-6);
}

TEST(Sgd, MinimizesQuadraticBowl) {
  // f(x) = (x - 3)^2; gradient 2(x - 3).
  Param p;
  p.value = Tensor(1, 1);
  p.value(0, 0) = -5.0f;
  SgdConfig cfg;
  cfg.learning_rate = 0.1;
  cfg.momentum = 0.9;
  Sgd opt({&p}, cfg);
  for (int i = 0; i < 200; ++i) {
    p.zero_grad();
    p.grad(0, 0) = 2.0f * (p.value(0, 0) - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value(0, 0), 3.0f, 1e-3);
}

TEST(Sgd, RejectsBadConfig) {
  Param p;
  p.value = Tensor(1, 1);
  SgdConfig cfg;
  cfg.learning_rate = 0.0;
  EXPECT_THROW(Sgd({&p}, cfg), std::invalid_argument);
  cfg = SgdConfig{};
  cfg.momentum = 1.0;
  EXPECT_THROW(Sgd({&p}, cfg), std::invalid_argument);
}


TEST(AdamOpt, MinimizesQuadraticBowl) {
  Param p;
  p.value = Tensor(1, 1);
  p.value(0, 0) = -5.0f;
  AdamConfig cfg;
  cfg.learning_rate = 0.2;
  Adam opt({&p}, cfg);
  for (int i = 0; i < 300; ++i) {
    p.zero_grad();
    p.grad(0, 0) = 2.0f * (p.value(0, 0) - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value(0, 0), 3.0f, 1e-2);
}

TEST(AdamOpt, FirstStepIsLearningRateSized) {
  // Bias correction makes the first update ~ lr * sign(grad).
  Param p;
  p.value = Tensor(1, 1);
  p.value(0, 0) = 0.0f;
  p.zero_grad();
  p.grad(0, 0) = 0.37f;
  AdamConfig cfg;
  cfg.learning_rate = 0.01;
  Adam opt({&p}, cfg);
  opt.step();
  EXPECT_NEAR(p.value(0, 0), -0.01f, 1e-4);
}

TEST(AdamOpt, AdaptsPerParameterScale) {
  // Two coordinates with wildly different gradient magnitudes move at
  // comparable speeds under Adam (unlike plain SGD).
  Param p;
  p.value = Tensor(1, 2);
  p.value.vec() = {0.0f, 0.0f};
  AdamConfig cfg;
  cfg.learning_rate = 0.05;
  Adam opt({&p}, cfg);
  for (int i = 0; i < 50; ++i) {
    p.zero_grad();
    p.grad(0, 0) = 100.0f;
    p.grad(0, 1) = 0.01f;
    opt.step();
  }
  EXPECT_NEAR(p.value(0, 0) / p.value(0, 1), 1.0, 0.1);
}

TEST(AdamOpt, WeightDecayShrinks) {
  Param p;
  p.value = Tensor(1, 1);
  p.value(0, 0) = 5.0f;
  AdamConfig cfg;
  cfg.learning_rate = 0.1;
  cfg.weight_decay = 0.5;
  Adam opt({&p}, cfg);
  for (int i = 0; i < 100; ++i) {
    p.zero_grad();  // Zero task gradient: only decay pulls to zero.
    opt.step();
  }
  EXPECT_LT(std::abs(p.value(0, 0)), 1.0f);
}

TEST(AdamOpt, RejectsBadConfig) {
  Param p;
  p.value = Tensor(1, 1);
  AdamConfig cfg;
  cfg.beta1 = 1.0;
  EXPECT_THROW(Adam({&p}, cfg), std::invalid_argument);
  cfg = AdamConfig{};
  cfg.epsilon = 0.0;
  EXPECT_THROW(Adam({&p}, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::nn
