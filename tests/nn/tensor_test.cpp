#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/stats.hpp"

namespace adapt::nn {
namespace {

TEST(Tensor, ConstructionAndAccess) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FLOAT_EQ(t(1, 2), 1.5f);
  t(0, 1) = -2.0f;
  EXPECT_FLOAT_EQ(t(0, 1), -2.0f);
  EXPECT_FLOAT_EQ(t.data()[1], -2.0f);  // Row-major layout.
}

TEST(Tensor, FillAndZero) {
  Tensor t(3, 3, 7.0f);
  t.zero();
  for (float v : t.vec()) EXPECT_FLOAT_EQ(v, 0.0f);
  t.fill(2.0f);
  for (float v : t.vec()) EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(Tensor, HeInitHasExpectedScale) {
  core::Rng rng(1);
  Tensor t(64, 128);
  t.he_init(128, rng);
  core::RunningStat s;
  for (float v : t.vec()) s.add(v);
  EXPECT_NEAR(s.mean(), 0.0, 0.005);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0 / 128.0), 0.005);
}

TEST(Tensor, XavierInitWithinBounds) {
  core::Rng rng(2);
  Tensor t(32, 32);
  t.xavier_init(32, 32, rng);
  const double limit = std::sqrt(6.0 / 64.0);
  for (float v : t.vec()) {
    ASSERT_GE(v, -limit);
    ASSERT_LE(v, limit);
  }
}

TEST(Tensor, SliceRows) {
  Tensor t(4, 2);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 2; ++c)
      t(r, c) = static_cast<float>(10 * r + c);
  const Tensor s = t.slice_rows(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_FLOAT_EQ(s(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(s(1, 1), 21.0f);
  EXPECT_THROW(t.slice_rows(3, 5), std::invalid_argument);
}

TEST(Tensor, SquaredNorm) {
  Tensor t(1, 3);
  t(0, 0) = 1.0f;
  t(0, 1) = 2.0f;
  t(0, 2) = 2.0f;
  EXPECT_DOUBLE_EQ(t.squared_norm(), 9.0);
}

TEST(Matmul, AbtMatchesManual) {
  // A (2x3) * B^T where B is (2x3) -> C (2x2).
  Tensor a(2, 3);
  Tensor b(2, 3);
  float va = 1.0f;
  for (auto& v : a.vec()) v = va++;
  float vb = 0.5f;
  for (auto& v : b.vec()) v = vb, vb += 0.5f;
  Tensor c;
  matmul_abt(a, b, c);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  // Row 0 of A = [1,2,3]; row 0 of B = [0.5,1,1.5].
  EXPECT_FLOAT_EQ(c(0, 0), 1 * 0.5f + 2 * 1.0f + 3 * 1.5f);
  // Row 1 of A = [4,5,6]; row 1 of B = [2,2.5,3].
  EXPECT_FLOAT_EQ(c(1, 1), 4 * 2.0f + 5 * 2.5f + 6 * 3.0f);
}

TEST(Matmul, AbMatchesAbtWithTransposedOperand) {
  core::Rng rng(3);
  Tensor a(5, 4);
  Tensor b(4, 6);
  a.he_init(4, rng);
  b.he_init(6, rng);
  Tensor c_ab;
  matmul_ab(a, b, c_ab);
  // Build B^T and use matmul_abt.
  Tensor bt(6, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 6; ++j) bt(j, i) = b(i, j);
  Tensor c_abt;
  matmul_abt(a, bt, c_abt);
  ASSERT_EQ(c_ab.size(), c_abt.size());
  for (std::size_t i = 0; i < c_ab.size(); ++i)
    EXPECT_NEAR(c_ab.vec()[i], c_abt.vec()[i], 1e-5);
}

TEST(Matmul, AtbMatchesManualTranspose) {
  core::Rng rng(4);
  Tensor a(7, 3);
  Tensor b(7, 2);
  a.he_init(3, rng);
  b.he_init(2, rng);
  Tensor c;
  matmul_atb(a, b, c);
  ASSERT_EQ(c.rows(), 3u);
  ASSERT_EQ(c.cols(), 2u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) {
      float expected = 0.0f;
      for (std::size_t k = 0; k < 7; ++k) expected += a(k, i) * b(k, j);
      EXPECT_NEAR(c(i, j), expected, 1e-5);
    }
}

TEST(Matmul, DimensionMismatchThrows) {
  Tensor a(2, 3);
  Tensor b(2, 4);
  Tensor c;
  EXPECT_THROW(matmul_abt(a, b, c), std::invalid_argument);
  EXPECT_THROW(matmul_ab(a, b, c), std::invalid_argument);
  Tensor b2(3, 4);
  EXPECT_THROW(matmul_atb(a, b2, c), std::invalid_argument);
}

TEST(Matmul, LargeParallelPathMatchesSmallPath) {
  // Exercise the OpenMP branch (> 16384 flops) against a direct sum.
  core::Rng rng(5);
  Tensor a(64, 48);
  Tensor b(32, 48);
  a.he_init(48, rng);
  b.he_init(48, rng);
  Tensor c;
  matmul_abt(a, b, c);
  for (std::size_t trial = 0; trial < 10; ++trial) {
    const std::size_t i = trial * 6 % 64;
    const std::size_t j = trial * 3 % 32;
    float expected = 0.0f;
    for (std::size_t k = 0; k < 48; ++k) expected += a(i, k) * b(j, k);
    EXPECT_NEAR(c(i, j), expected, 1e-4);
  }
}

TEST(AddRowBroadcast, AddsBiasPerRow) {
  Tensor y(2, 3, 1.0f);
  add_row_broadcast(y, {0.5f, -1.0f, 2.0f});
  EXPECT_FLOAT_EQ(y(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y(1, 1), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 3.0f);
  EXPECT_THROW(add_row_broadcast(y, {1.0f}), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::nn
