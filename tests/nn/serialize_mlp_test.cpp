#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <memory>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"

namespace adapt::nn {
namespace {

TEST(MlpBuilder, BackgroundSpecMatchesPaper) {
  // "four FC layers in total ... maximum width of 256 in its first FC
  // layer, with subsequent layers gradually decreasing in width."
  const MlpSpec spec = background_net_spec(13);
  EXPECT_EQ(spec.n_fc_layers(), 4u);
  ASSERT_EQ(spec.widths.size(), 3u);
  EXPECT_EQ(spec.widths[0], 256u);
  EXPECT_GT(spec.widths[0], spec.widths[1]);
  EXPECT_GT(spec.widths[1], spec.widths[2]);
}

TEST(MlpBuilder, DetaSpecMatchesPaper) {
  // "maximum width of 16 in the middle and shorter widths at the
  // beginning and end."
  const MlpSpec spec = deta_net_spec(13);
  EXPECT_EQ(spec.n_fc_layers(), 4u);
  ASSERT_EQ(spec.widths.size(), 3u);
  EXPECT_EQ(spec.widths[1], 16u);
  EXPECT_LT(spec.widths[0], spec.widths[1]);
  EXPECT_LT(spec.widths[2], spec.widths[1]);
}

TEST(MlpBuilder, StandardBlockOrderIsBnFcRelu) {
  core::Rng rng(1);
  Sequential model = build_mlp(background_net_spec(13, false), rng);
  // Blocks: [BN, FC, ReLU] x3 + final FC = 10 layers.
  ASSERT_EQ(model.n_layers(), 10u);
  EXPECT_EQ(model.layer(0).type(), "batchnorm1d");
  EXPECT_EQ(model.layer(1).type(), "linear");
  EXPECT_EQ(model.layer(2).type(), "relu");
  EXPECT_EQ(model.layer(9).type(), "linear");
}

TEST(MlpBuilder, SwappedBlockOrderIsFcBnRelu) {
  core::Rng rng(2);
  Sequential model = build_mlp(background_net_spec(13, true), rng);
  ASSERT_EQ(model.n_layers(), 10u);
  EXPECT_EQ(model.layer(0).type(), "linear");
  EXPECT_EQ(model.layer(1).type(), "batchnorm1d");
  EXPECT_EQ(model.layer(2).type(), "relu");
}

TEST(MlpBuilder, OutputIsSingleValue) {
  core::Rng rng(3);
  for (const auto& spec :
       {background_net_spec(13), deta_net_spec(13), background_net_spec(12)}) {
    Sequential model = build_mlp(spec, rng);
    Tensor x(4, spec.input_dim, 0.5f);
    const Tensor y = model.forward(x, false);
    EXPECT_EQ(y.rows(), 4u);
    EXPECT_EQ(y.cols(), 1u);
  }
}

TEST(MlpBuilder, RejectsEmptySpecs) {
  core::Rng rng(4);
  MlpSpec spec;
  spec.widths = {};
  EXPECT_THROW(build_mlp(spec, rng), std::invalid_argument);
  spec.widths = {8};
  spec.input_dim = 0;
  EXPECT_THROW(build_mlp(spec, rng), std::invalid_argument);
}

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  const std::string path_ = "/tmp/adaptml_serialize_test.adnn";
};

TEST_F(SerializeTest, RoundTripPreservesOutputs) {
  core::Rng rng(5);
  Sequential model = build_mlp(background_net_spec(13), rng);
  // Mutate batchnorm running stats so the round trip covers them.
  Tensor calib(32, 13);
  for (auto& v : calib.vec()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  (void)model.forward(calib, true);

  Standardizer std_;
  std_.fit(calib);
  std::map<std::string, double> meta{{"polar_thr_0", -0.25}, {"k", 3.0}};
  ASSERT_TRUE(save_model(model, std_, meta, path_));

  auto loaded = load_model(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->metadata.at("k"), 3.0);
  EXPECT_EQ(loaded->metadata.at("polar_thr_0"), -0.25);
  ASSERT_TRUE(loaded->standardizer.fitted());

  Tensor x(8, 13);
  core::Rng xr(6);
  for (auto& v : x.vec()) v = static_cast<float>(xr.uniform(-1.0, 1.0));
  const Tensor y0 = model.forward(x, false);
  const Tensor y1 = loaded->model.forward(x, false);
  ASSERT_EQ(y0.size(), y1.size());
  for (std::size_t i = 0; i < y0.size(); ++i)
    EXPECT_FLOAT_EQ(y0.vec()[i], y1.vec()[i]);

  const Tensor s0 = std_.transform(x);
  const Tensor s1 = loaded->standardizer.transform(x);
  for (std::size_t i = 0; i < s0.size(); ++i)
    EXPECT_FLOAT_EQ(s0.vec()[i], s1.vec()[i]);
}

TEST_F(SerializeTest, RoundTripWithoutStandardizer) {
  core::Rng rng(7);
  Sequential model = build_mlp(deta_net_spec(13), rng);
  Standardizer unfitted;
  ASSERT_TRUE(save_model(model, unfitted, {}, path_));
  auto loaded = load_model(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->standardizer.fitted());
  EXPECT_TRUE(loaded->metadata.empty());
}

TEST_F(SerializeTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_model("/tmp/definitely_missing_file.adnn").has_value());
}

TEST_F(SerializeTest, CorruptMagicRejected) {
  core::Rng rng(8);
  Sequential model = build_mlp(deta_net_spec(13), rng);
  ASSERT_TRUE(save_model(model, {}, {}, path_));
  // Corrupt the first byte.
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputc('X', f);
    std::fclose(f);
  }
  EXPECT_FALSE(load_model(path_).has_value());
}

TEST_F(SerializeTest, TruncatedFileRejected) {
  core::Rng rng(9);
  Sequential model = build_mlp(deta_net_spec(13), rng);
  ASSERT_TRUE(save_model(model, {}, {}, path_));
  // Truncate to half size.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path_.c_str(), size / 2), 0);
  }
  EXPECT_FALSE(load_model(path_).has_value());
}

TEST_F(SerializeTest, SigmoidLayerRoundTrips) {
  core::Rng rng(10);
  Sequential model;
  model.add(std::make_unique<Linear>(3, 2, rng));
  model.add(std::make_unique<Sigmoid>());
  ASSERT_TRUE(save_model(model, {}, {}, path_));
  auto loaded = load_model(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->model.n_layers(), 2u);
  EXPECT_EQ(loaded->model.layer(1).type(), "sigmoid");
}

}  // namespace
}  // namespace adapt::nn
