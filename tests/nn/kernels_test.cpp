#include "nn/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/rng.hpp"
#include "quant/qparams.hpp"

namespace adapt::nn::kernels {
namespace {

/// Every variant the host can actually run, scalar included.
std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (int i = 0; i < kIsaCount; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (supported(isa)) out.push_back(isa);
  }
  return out;
}

/// Uniform integer in [lo, hi] (Rng only exposes uniform_index).
std::int32_t int_in(core::Rng& rng, std::int32_t lo, std::int32_t hi) {
  return lo + static_cast<std::int32_t>(rng.uniform_index(
                  static_cast<std::uint64_t>(hi - lo) + 1));
}

std::vector<std::uint8_t> random_u8(std::size_t n, core::Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& x : v)
    x = static_cast<std::uint8_t>(int_in(rng, 0, 255));
  return v;
}

std::vector<std::int8_t> random_s8(std::size_t n, core::Rng& rng) {
  std::vector<std::int8_t> v(n);
  for (auto& x : v)
    x = static_cast<std::int8_t>(int_in(rng, -128, 127));
  return v;
}

/// Shapes chosen to cover remainder tails in every variant: odd
/// in/out_features, in_features % 16 and % 64 != 0 (the AVX2 / AVX-512
/// vector widths), sub-vector widths, and the production layer shapes.
struct GemmShape {
  std::size_t in, out;
};

const std::vector<GemmShape>& gemm_shapes() {
  static const std::vector<GemmShape> s = {
      {1, 1},   {3, 5},    {13, 256}, {16, 4},  {31, 7},
      {33, 3},  {64, 64},  {65, 4},   {100, 17}, {256, 128},
  };
  return s;
}

const std::vector<std::size_t>& batch_sizes() {
  static const std::vector<std::size_t> b = {1, 3, 64};
  return b;
}

TEST(U8I8GemmKernels, AllVariantsMatchScalarExactly) {
  core::Rng rng(2024);
  const KernelSet& ref = kernel_set(Isa::kScalar);
  for (const GemmShape& shape : gemm_shapes()) {
    for (const std::size_t rows : batch_sizes()) {
      const auto x = random_u8(rows * shape.in, rng);
      const auto w = random_s8(shape.out * shape.in, rng);
      std::vector<std::int32_t> want(rows * shape.out, 0);
      ref.u8i8_gemm(x.data(), w.data(), want.data(), rows, shape.in,
                    shape.out);
      for (const Isa isa : supported_isas()) {
        if (isa == Isa::kScalar) continue;
        std::vector<std::int32_t> got(rows * shape.out, -1);
        kernel_set(isa).u8i8_gemm(x.data(), w.data(), got.data(), rows,
                                  shape.in, shape.out);
        for (std::size_t i = 0; i < want.size(); ++i)
          ASSERT_EQ(got[i], want[i])
              << kernel_set(isa).name << " in=" << shape.in
              << " out=" << shape.out << " rows=" << rows << " idx=" << i;
      }
    }
  }
}

TEST(U8I8GemmKernels, ExtremeValuesDoNotSaturate) {
  // All-255 activations against all-(-128) weights is the most
  // negative possible accumulation — the case the saturating
  // maddubs/VPDPBUSDS instructions would silently clip.
  const std::size_t in = 256, out = 4, rows = 2;
  const std::vector<std::uint8_t> x(rows * in, 255);
  const std::vector<std::int8_t> w(out * in, -128);
  const std::int32_t expected = -128 * 255 * static_cast<std::int32_t>(in);
  for (const Isa isa : supported_isas()) {
    std::vector<std::int32_t> acc(rows * out, 0);
    kernel_set(isa).u8i8_gemm(x.data(), w.data(), acc.data(), rows, in, out);
    for (const std::int32_t a : acc)
      ASSERT_EQ(a, expected) << kernel_set(isa).name;
  }
}

TEST(U8RequantKernels, AllVariantsMatchScalarExactly) {
  core::Rng rng(77);
  for (const GemmShape& shape : gemm_shapes()) {
    for (const std::size_t rows : batch_sizes()) {
      for (const bool relu : {false, true}) {
        const std::size_t n = rows * shape.out;
        std::vector<std::int32_t> acc(n);
        for (auto& a : acc)
          a = int_in(rng, -2000000, 2000000);
        std::vector<std::int32_t> row_sums(shape.out);
        for (auto& s : row_sums)
          s = int_in(rng, -4000, 4000);
        std::vector<std::int32_t> bias(shape.out);
        for (auto& b : bias)
          b = int_in(rng, -50000, 50000);
        std::vector<float> ws(shape.out);
        for (auto& s : ws)
          s = static_cast<float>(rng.uniform(1e-4, 2e-2));
        const std::int32_t zp_in =
            int_in(rng, 0, 255);
        const auto s_in = static_cast<float>(rng.uniform(1e-3, 5e-2));
        const auto next_scale = static_cast<float>(rng.uniform(1e-3, 5e-2));
        const std::int32_t next_zp =
            int_in(rng, 0, 255);

        std::vector<std::uint8_t> want(n, 0);
        kernel_set(Isa::kScalar)
            .u8_requant(acc.data(), rows, shape.out, zp_in, row_sums.data(),
                        bias.data(), relu, s_in, ws.data(), next_scale,
                        next_zp, want.data());
        for (const Isa isa : supported_isas()) {
          if (isa == Isa::kScalar) continue;
          std::vector<std::uint8_t> got(n, 1);
          kernel_set(isa).u8_requant(acc.data(), rows, shape.out, zp_in,
                                     row_sums.data(), bias.data(), relu, s_in,
                                     ws.data(), next_scale, next_zp,
                                     got.data());
          for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(got[i], want[i])
                << kernel_set(isa).name << " out=" << shape.out
                << " rows=" << rows << " relu=" << relu << " idx=" << i;
        }
      }
    }
  }
}

TEST(U8RequantKernels, ScalarMatchesQParamsQuantizeDefinition) {
  // The kernel IS the layer epilogue: a = acc - zp*row_sum + bias,
  // optional ReLU, real = float(a) * s_in * ws, then
  // QParams{next_scale, next_zp}.quantize(real).  Pin the scalar
  // reference to that definition so the variant-equality test above
  // transitively pins every variant to it.
  core::Rng rng(31);
  const std::size_t out = 33, rows = 5;
  std::vector<std::int32_t> acc(rows * out);
  for (auto& a : acc)
    a = int_in(rng, -500000, 500000);
  std::vector<std::int32_t> row_sums(out), bias(out);
  std::vector<float> ws(out);
  for (std::size_t i = 0; i < out; ++i) {
    row_sums[i] = int_in(rng, -3000, 3000);
    bias[i] = int_in(rng, -20000, 20000);
    ws[i] = static_cast<float>(rng.uniform(1e-4, 1e-2));
  }
  const std::int32_t zp_in = 131;
  const float s_in = 0.0173f;
  const quant::QParams next{0.0211f, 97};

  std::vector<std::uint8_t> got(rows * out, 0);
  kernel_set(Isa::kScalar)
      .u8_requant(acc.data(), rows, out, zp_in, row_sums.data(), bias.data(),
                  /*relu=*/true, s_in, ws.data(), next.scale, next.zero_point,
                  got.data());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t oc = 0; oc < out; ++oc) {
      std::int32_t a = acc[r * out + oc] - zp_in * row_sums[oc] + bias[oc];
      if (a < 0) a = 0;
      const float real = static_cast<float>(a) * s_in * ws[oc];
      ASSERT_EQ(static_cast<std::int32_t>(got[r * out + oc]),
                next.quantize(real))
          << "r=" << r << " oc=" << oc;
    }
  }
}

TEST(U8RequantKernels, SaturatedAndExtremeAccumulators) {
  // Accumulators big enough to push |real / next_scale| far past the
  // ±512 rounding saturation: every variant must clamp to the same
  // endpoint byte.
  const std::size_t out = 17, rows = 3;
  std::vector<std::int32_t> acc(rows * out);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    switch (i % 4) {
      case 0: acc[i] = std::numeric_limits<std::int32_t>::max(); break;
      case 1: acc[i] = std::numeric_limits<std::int32_t>::min() / 2; break;
      case 2: acc[i] = -1; break;
      default: acc[i] = 0; break;
    }
  }
  const std::vector<std::int32_t> row_sums(out, 0);
  const std::vector<std::int32_t> bias(out, 0);
  const std::vector<float> ws(out, 1.0f);
  std::vector<std::uint8_t> want(rows * out, 0);
  kernel_set(Isa::kScalar)
      .u8_requant(acc.data(), rows, out, 0, row_sums.data(), bias.data(),
                  /*relu=*/false, 1.0f, ws.data(), 0.01f, 128, want.data());
  for (const Isa isa : supported_isas()) {
    if (isa == Isa::kScalar) continue;
    std::vector<std::uint8_t> got(rows * out, 1);
    kernel_set(isa).u8_requant(acc.data(), rows, out, 0, row_sums.data(),
                               bias.data(), false, 1.0f, ws.data(), 0.01f,
                               128, got.data());
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(got[i], want[i]) << kernel_set(isa).name << " idx=" << i;
  }
  // Spot-check the endpoints really were exercised.
  EXPECT_EQ(want[0], 255);  // INT32_MAX -> +inf side -> 255.
  EXPECT_EQ(want[1], 0);    // Very negative -> 0.
}

TEST(RoundHalfAwaySaturated, MatchesLroundInRange) {
  // Exhaustive-ish sweep plus the exact half-way and boundary cases.
  const auto check = [](float y) {
    ASSERT_EQ(round_half_away_saturated(y),
              static_cast<std::int32_t>(std::lround(y)))
        << "y=" << y;
  };
  for (int i = -5110; i <= 5110; ++i)
    check(static_cast<float>(i) * 0.1f);
  for (int i = -511; i <= 511; ++i) {
    check(static_cast<float>(i) + 0.5f);
    check(static_cast<float>(i) - 0.5f);
    check(std::nextafterf(static_cast<float>(i) + 0.5f, 1e9f));
    check(std::nextafterf(static_cast<float>(i) + 0.5f, -1e9f));
  }
  // Outside [-512, 512] the helper saturates (callers clamp to a byte
  // anyway); infinities take the saturation arms and NaN is pinned to
  // -512 — deterministic where lround would be undefined.
  EXPECT_EQ(round_half_away_saturated(1e9f), 512);
  EXPECT_EQ(round_half_away_saturated(-1e9f), -512);
  EXPECT_EQ(round_half_away_saturated(std::numeric_limits<float>::infinity()),
            512);
  EXPECT_EQ(
      round_half_away_saturated(-std::numeric_limits<float>::infinity()),
      -512);
  EXPECT_EQ(
      round_half_away_saturated(std::numeric_limits<float>::quiet_NaN()),
      -512);
}

TEST(F32RowBlockKernels, AllVariantsMatchScalarExactly) {
  core::Rng rng(15);
  struct Shape {
    std::size_t rows, k, j;
  };
  // Column counts straddle both vector widths (8 and 16) and their
  // tails; rows covers every micro-tile template instantiation.
  const std::vector<Shape> shapes = {
      {1, 1, 1},  {1, 13, 8},  {2, 7, 9},   {3, 5, 15},
      {4, 16, 16}, {4, 13, 17}, {4, 64, 33}, {2, 100, 7},
  };
  for (const Shape& s : shapes) {
    std::vector<float> a(s.rows * s.k);
    std::vector<float> b(s.k * s.j);
    for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    std::vector<float> want(s.rows * s.j, 0.0f);
    kernel_set(Isa::kScalar)
        .f32_row_block(a.data(), s.k, b.data(), s.j, want.data(), s.j, s.rows,
                       s.k, 0, s.j);
    for (const Isa isa : supported_isas()) {
      if (isa == Isa::kScalar) continue;
      std::vector<float> got(s.rows * s.j, -7.0f);
      kernel_set(isa).f32_row_block(a.data(), s.k, b.data(), s.j, got.data(),
                                    s.j, s.rows, s.k, 0, s.j);
      for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_EQ(got[i], want[i])
            << kernel_set(isa).name << " rows=" << s.rows << " k=" << s.k
            << " j=" << s.j << " idx=" << i;
    }
  }
}

TEST(KernelRegistry, ParseIsaName) {
  Isa isa = Isa::kAvx512;
  EXPECT_TRUE(parse_isa_name("scalar", &isa));
  EXPECT_EQ(isa, Isa::kScalar);
  EXPECT_TRUE(parse_isa_name("avx2", &isa));
  EXPECT_EQ(isa, Isa::kAvx2);
  EXPECT_TRUE(parse_isa_name("avx512", &isa));
  EXPECT_EQ(isa, Isa::kAvx512);
  EXPECT_FALSE(parse_isa_name("AVX2", &isa));
  EXPECT_FALSE(parse_isa_name("sse", &isa));
  EXPECT_FALSE(parse_isa_name("", &isa));
  EXPECT_FALSE(parse_isa_name(nullptr, &isa));
  EXPECT_FALSE(parse_isa_name("scalar", nullptr));
}

TEST(KernelRegistry, ScalarAlwaysAvailable) {
  EXPECT_TRUE(compiled(Isa::kScalar));
  EXPECT_TRUE(supported(Isa::kScalar));
  const KernelSet& k = kernel_set(Isa::kScalar);
  EXPECT_NE(k.u8i8_gemm, nullptr);
  EXPECT_NE(k.u8_requant, nullptr);
  EXPECT_NE(k.f32_row_block, nullptr);
  EXPECT_NE(k.u8i8_calls, nullptr);
  EXPECT_NE(k.requant_calls, nullptr);
  EXPECT_NE(k.f32_calls, nullptr);
}

TEST(KernelRegistry, SupportedImpliesCompiled) {
  for (int i = 0; i < kIsaCount; ++i) {
    const Isa isa = static_cast<Isa>(i);
    if (supported(isa)) {
      EXPECT_TRUE(compiled(isa));
    }
  }
}

TEST(KernelRegistry, ForceIsaRedirectsActiveDispatch) {
  const Isa before = active_isa();
  for (const Isa isa : supported_isas()) {
    force_isa_for_testing(isa);
    EXPECT_EQ(active_isa(), isa);
    EXPECT_EQ(active().isa, isa);
  }
  reset_forced_isa_for_testing();
  EXPECT_EQ(active_isa(), before);
}

}  // namespace
}  // namespace adapt::nn::kernels
