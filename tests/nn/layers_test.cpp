#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"

namespace adapt::nn {
namespace {

/// Numerical gradient check harness: perturb one input entry, measure
/// the change of a scalar loss L = sum(output * g) for a fixed random
/// g, and compare against the layer's backward().
void check_input_gradient(Layer& layer, const Tensor& x, double tol,
                          double eps = 1e-3) {
  core::Rng rng(999);
  Tensor y = layer.forward(x, /*training=*/true);
  Tensor g(y.rows(), y.cols());
  for (auto& v : g.vec()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const Tensor dx = layer.backward(g);
  ASSERT_EQ(dx.rows(), x.rows());
  ASSERT_EQ(dx.cols(), x.cols());

  const auto loss = [&](const Tensor& input) {
    Tensor out = layer.forward(input, /*training=*/true);
    double l = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
      l += static_cast<double>(out.vec()[i]) * g.vec()[i];
    return l;
  };

  // Spot-check a handful of entries.
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(1, x.size() / 7)) {
    Tensor xp = x;
    xp.vec()[i] += static_cast<float>(eps);
    Tensor xm = x;
    xm.vec()[i] -= static_cast<float>(eps);
    const double fd = (loss(xp) - loss(xm)) / (2.0 * eps);
    EXPECT_NEAR(dx.vec()[i], fd, tol) << "entry " << i;
  }
  // Restore caches for the original input (callers may keep going).
  (void)layer.forward(x, true);
  (void)layer.backward(g);
}

/// Parameter gradient check for the layer's first parameter tensor.
void check_param_gradient(Layer& layer, const Tensor& x, Param& param,
                          double tol, double eps = 1e-3) {
  core::Rng rng(555);
  Tensor y = layer.forward(x, true);
  Tensor g(y.rows(), y.cols());
  for (auto& v : g.vec()) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  param.zero_grad();
  (void)layer.forward(x, true);
  (void)layer.backward(g);
  const std::vector<float> analytic = param.grad.vec();

  const auto loss = [&]() {
    Tensor out = layer.forward(x, true);
    double l = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
      l += static_cast<double>(out.vec()[i]) * g.vec()[i];
    return l;
  };

  for (std::size_t i = 0; i < param.value.size();
       i += std::max<std::size_t>(1, param.value.size() / 7)) {
    const float original = param.value.vec()[i];
    param.value.vec()[i] = original + static_cast<float>(eps);
    const double lp = loss();
    param.value.vec()[i] = original - static_cast<float>(eps);
    const double lm = loss();
    param.value.vec()[i] = original;
    const double fd = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], fd, tol) << "param entry " << i;
  }
}

Tensor random_input(std::size_t n, std::size_t d, std::uint64_t seed) {
  core::Rng rng(seed);
  Tensor x(n, d);
  for (auto& v : x.vec()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  return x;
}

TEST(Linear, ForwardMatchesManual) {
  core::Rng rng(1);
  Linear lin(2, 3, rng);
  // Set known weights/bias.
  lin.weight().value.vec() = {1.0f, 0.0f, 0.0f, 1.0f, 1.0f, -1.0f};
  lin.bias().value.vec() = {0.5f, -0.5f, 0.0f};
  Tensor x(1, 2);
  x(0, 0) = 2.0f;
  x(0, 1) = 3.0f;
  const Tensor y = lin.forward(x, false);
  // y = x W^T + b with W rows = output channels.
  EXPECT_FLOAT_EQ(y(0, 0), 2.0f * 1 + 3.0f * 0 + 0.5f);
  EXPECT_FLOAT_EQ(y(0, 1), 2.0f * 0 + 3.0f * 1 - 0.5f);
  EXPECT_FLOAT_EQ(y(0, 2), 2.0f * 1 - 3.0f * 1 + 0.0f);
}

TEST(Linear, InputGradientMatchesFiniteDifference) {
  core::Rng rng(2);
  Linear lin(5, 4, rng);
  check_input_gradient(lin, random_input(6, 5, 10), 2e-2);
}

TEST(Linear, WeightGradientMatchesFiniteDifference) {
  core::Rng rng(3);
  Linear lin(4, 3, rng);
  const Tensor x = random_input(5, 4, 11);
  check_param_gradient(lin, x, lin.weight(), 2e-2);
}

TEST(Linear, BiasGradientMatchesFiniteDifference) {
  core::Rng rng(4);
  Linear lin(4, 3, rng);
  const Tensor x = random_input(5, 4, 12);
  check_param_gradient(lin, x, lin.bias(), 2e-2);
}

TEST(Linear, GradientsAccumulateUntilZeroed) {
  core::Rng rng(5);
  Linear lin(3, 2, rng);
  const Tensor x = random_input(4, 3, 13);
  Tensor g(4, 2, 1.0f);

  lin.weight().zero_grad();
  lin.bias().zero_grad();
  (void)lin.forward(x, true);
  (void)lin.backward(g);
  const std::vector<float> once = lin.weight().grad.vec();

  (void)lin.forward(x, true);
  (void)lin.backward(g);
  for (std::size_t i = 0; i < once.size(); ++i)
    EXPECT_NEAR(lin.weight().grad.vec()[i], 2.0f * once[i], 1e-4);

  lin.weight().zero_grad();
  for (float v : lin.weight().grad.vec()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  Tensor x(1, 4);
  x.vec() = {-1.0f, 0.0f, 2.0f, -0.5f};
  const Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(y(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(y(0, 3), 0.0f);
}

TEST(ReLU, BackwardMasksGradient) {
  ReLU relu;
  Tensor x(1, 3);
  x.vec() = {-1.0f, 1.0f, 2.0f};
  (void)relu.forward(x, true);
  Tensor g(1, 3, 1.0f);
  const Tensor dx = relu.backward(g);
  EXPECT_FLOAT_EQ(dx(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(dx(0, 2), 1.0f);
}

TEST(SigmoidLayer, ForwardRangeAndSymmetry) {
  EXPECT_FLOAT_EQ(sigmoid(0.0f), 0.5f);
  EXPECT_NEAR(sigmoid(10.0f), 1.0f, 1e-4);
  EXPECT_NEAR(sigmoid(-10.0f), 0.0f, 1e-4);
  EXPECT_NEAR(sigmoid(3.0f) + sigmoid(-3.0f), 1.0f, 1e-6);
  // Extreme logits must not overflow.
  EXPECT_FLOAT_EQ(sigmoid(500.0f), 1.0f);
  EXPECT_FLOAT_EQ(sigmoid(-500.0f), 0.0f);
}

TEST(SigmoidLayer, GradientMatchesFiniteDifference) {
  Sigmoid sig;
  check_input_gradient(sig, random_input(3, 4, 14), 5e-3);
}

TEST(BatchNorm, TrainingNormalizesBatch) {
  BatchNorm1d bn(2);
  Tensor x(4, 2);
  x.vec() = {1.0f, 10.0f, 2.0f, 20.0f, 3.0f, 30.0f, 4.0f, 40.0f};
  const Tensor y = bn.forward(x, true);
  // Per-column mean ~ 0, variance ~ 1 (biased).
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t r = 0; r < 4; ++r) mean += y(r, c);
    mean /= 4.0;
    for (std::size_t r = 0; r < 4; ++r) {
      const double d = y(r, c) - mean;
      var += d * d;
    }
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNorm, RunningStatsConvergeToDataMoments) {
  BatchNorm1d bn(1, /*momentum=*/0.2);
  core::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    Tensor x(32, 1);
    for (auto& v : x.vec()) v = static_cast<float>(rng.normal(5.0, 2.0));
    (void)bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0, 0.3);
  EXPECT_NEAR(bn.running_var()[0], 4.0, 0.8);
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  BatchNorm1d bn(1, 1.0);  // Momentum 1: running = last batch.
  Tensor x(4, 1);
  x.vec() = {2.0f, 4.0f, 6.0f, 8.0f};
  (void)bn.forward(x, true);
  // A single inference point is normalized by running stats, not by
  // (undefined) batch stats.
  Tensor one(1, 1);
  one(0, 0) = 5.0f;
  const Tensor y = bn.forward(one, false);
  // mean 5, unbiased var = 20/3.
  EXPECT_NEAR(y(0, 0), 0.0, 1e-5);
}

TEST(BatchNorm, AffineParametersApplied) {
  BatchNorm1d bn(1);
  bn.gamma().value(0, 0) = 3.0f;
  bn.beta().value(0, 0) = -1.0f;
  Tensor x(2, 1);
  x.vec() = {-1.0f, 1.0f};
  const Tensor y = bn.forward(x, true);
  // Normalized values are +-1 (up to eps); y = 3 * xhat - 1.
  EXPECT_NEAR(y(0, 0), -4.0, 1e-2);
  EXPECT_NEAR(y(1, 0), 2.0, 1e-2);
}

TEST(BatchNorm, InputGradientMatchesFiniteDifference) {
  BatchNorm1d bn(3);
  // Make gamma/beta non-trivial so the gradient exercises them.
  bn.gamma().value.vec() = {1.5f, 0.7f, -1.2f};
  bn.beta().value.vec() = {0.1f, -0.2f, 0.3f};
  check_input_gradient(bn, random_input(8, 3, 15), 3e-2);
}

TEST(BatchNorm, GammaBetaGradientsMatchFiniteDifference) {
  BatchNorm1d bn(2);
  const Tensor x = random_input(6, 2, 16);
  check_param_gradient(bn, x, bn.gamma(), 3e-2);
  check_param_gradient(bn, x, bn.beta(), 3e-2);
}

TEST(BatchNorm, SingletonTrainingBatchRejected) {
  BatchNorm1d bn(2);
  Tensor x(1, 2, 1.0f);
  EXPECT_THROW(bn.forward(x, true), std::invalid_argument);
  EXPECT_NO_THROW(bn.forward(x, false));
}

TEST(SequentialStack, ForwardComposesLayers) {
  core::Rng rng(7);
  Sequential model;
  model.add(std::make_unique<Linear>(3, 4, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Linear>(4, 1, rng));
  const Tensor x = random_input(5, 3, 17);
  const Tensor y = model.forward(x, false);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 1u);
  EXPECT_EQ(model.n_layers(), 3u);
  EXPECT_EQ(model.params().size(), 4u);  // Two linears x (W, b).
  EXPECT_EQ(model.n_parameters(), 3u * 4u + 4u + 4u * 1u + 1u);
}

TEST(SequentialStack, SnapshotRestoreRoundTrip) {
  core::Rng rng(8);
  Sequential model;
  model.add(std::make_unique<BatchNorm1d>(3));
  model.add(std::make_unique<Linear>(3, 2, rng));
  const Tensor x = random_input(6, 3, 18);
  (void)model.forward(x, true);  // Mutate running stats.
  const auto snap = model.snapshot_weights();
  const Tensor y_before = model.forward(x, false);

  // Perturb everything, then restore.
  for (Param* p : model.params())
    for (auto& v : p->value.vec()) v += 1.0f;
  (void)model.forward(x, true);
  model.restore_weights(snap);
  const Tensor y_after = model.forward(x, false);
  for (std::size_t i = 0; i < y_before.size(); ++i)
    EXPECT_FLOAT_EQ(y_before.vec()[i], y_after.vec()[i]);
}

TEST(SequentialStack, WholeNetworkGradientCheck) {
  core::Rng rng(9);
  Sequential model;
  model.add(std::make_unique<BatchNorm1d>(4));
  model.add(std::make_unique<Linear>(4, 6, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Linear>(6, 1, rng));

  const Tensor x = random_input(8, 4, 19);
  core::Rng grng(20);
  Tensor g(8, 1);
  for (auto& v : g.vec()) v = static_cast<float>(grng.uniform(-1.0, 1.0));

  (void)model.forward(x, true);
  const Tensor dx = model.backward(g);

  const auto loss = [&](const Tensor& input) {
    Tensor out = model.forward(input, true);
    double l = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
      l += static_cast<double>(out.vec()[i]) * g.vec()[i];
    return l;
  };
  const double eps = 1e-3;
  for (std::size_t i = 0; i < x.size(); i += 5) {
    Tensor xp = x;
    xp.vec()[i] += static_cast<float>(eps);
    Tensor xm = x;
    xm.vec()[i] -= static_cast<float>(eps);
    const double fd = (loss(xp) - loss(xm)) / (2.0 * eps);
    EXPECT_NEAR(dx.vec()[i], fd, 5e-2) << "entry " << i;
  }
}

}  // namespace
}  // namespace adapt::nn
