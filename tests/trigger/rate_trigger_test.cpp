#include "trigger/rate_trigger.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/telemetry.hpp"
#include "sim/exposure.hpp"

namespace adapt::trigger {
namespace {

// ---------------------------------------------------------------------
// The Poisson-significance statistic underneath the trigger.

TEST(PoissonSignificance, TailProbabilityKnownValues) {
  // P(X >= 1 | mu) = 1 - e^-mu.
  for (double mu : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(std::exp(core::poisson_tail_log_p(1, mu)),
                1.0 - std::exp(-mu), 1e-10);
  }
  // P(X >= k | 0) = 0 for k > 0; P(X >= 0 | mu) = 1.
  EXPECT_EQ(core::poisson_tail_log_p(0, 5.0), 0.0);
  EXPECT_TRUE(std::isinf(core::poisson_tail_log_p(3, 0.0)));
}

TEST(PoissonSignificance, MatchesNormalApproximationForLargeMu) {
  // At mu = 10000, k = 10300 (3 sigma) the exact tail must agree with
  // the Gaussian to a few percent in sigma.
  const double sigma = core::poisson_significance_sigma(10300, 10000.0);
  EXPECT_NEAR(sigma, 3.0, 0.1);
}

TEST(PoissonSignificance, MonotonicInCounts) {
  double prev = 0.0;
  for (std::uint64_t k = 100; k <= 200; k += 10) {
    const double s = core::poisson_significance_sigma(k, 100.0);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_GT(prev, 5.0);
}

TEST(PoissonSignificance, UnderFluctuationIsZero) {
  EXPECT_DOUBLE_EQ(core::poisson_significance_sigma(50, 100.0), 0.0);
}

TEST(NormalQuantile, RoundTripsKnownPoints) {
  EXPECT_NEAR(core::normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(core::normal_quantile(0.8413447), 1.0, 1e-4);
  EXPECT_NEAR(core::normal_quantile(0.9772499), 2.0, 1e-4);
  EXPECT_NEAR(core::normal_quantile(1.0 - 2.866516e-7), 5.0, 1e-3);
  EXPECT_THROW(core::normal_quantile(0.0), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Trigger behaviour on synthetic time streams.

std::vector<double> uniform_times(double rate_hz, double exposure_s,
                                  core::Rng& rng) {
  const auto n = rng.poisson(rate_hz * exposure_s);
  std::vector<double> times;
  times.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    times.push_back(rng.uniform(0.0, exposure_s));
  return times;
}

TEST(RateTrigger, QuietBackgroundDoesNotTrigger) {
  TriggerConfig cfg;
  cfg.background_rate_hz = 3000.0;
  const RateTrigger trigger(cfg);
  core::Rng rng(1);
  int false_alarms = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto result =
        trigger.scan(uniform_times(3000.0, 1.0, rng), 1.0);
    if (result.triggered) ++false_alarms;
  }
  // 5-sigma threshold with ~500 correlated windows per trial: false
  // alarms should be absent at this sample size.
  EXPECT_EQ(false_alarms, 0);
}

TEST(RateTrigger, BurstOnTopOfBackgroundTriggers) {
  TriggerConfig cfg;
  cfg.background_rate_hz = 3000.0;
  const RateTrigger trigger(cfg);
  core::Rng rng(2);
  auto times = uniform_times(3000.0, 1.0, rng);
  // A burst: 400 extra events concentrated in [0.30, 0.40].
  for (int i = 0; i < 400; ++i) times.push_back(rng.uniform(0.30, 0.40));
  const auto result = trigger.scan(std::move(times), 1.0);
  ASSERT_TRUE(result.triggered);
  EXPECT_GT(result.significance_sigma, 5.0);
  // The best window must overlap the burst interval.
  EXPECT_LT(result.t_start, 0.40);
  EXPECT_GT(result.t_end, 0.30);
}

TEST(RateTrigger, SignificanceGrowsWithBurstStrength) {
  TriggerConfig cfg;
  cfg.background_rate_hz = 3000.0;
  const RateTrigger trigger(cfg);
  double prev = 0.0;
  for (const int extra : {100, 300, 900}) {
    core::Rng rng(3);
    auto times = uniform_times(3000.0, 1.0, rng);
    for (int i = 0; i < extra; ++i)
      times.push_back(rng.uniform(0.5, 0.6));
    const double sigma =
        trigger.scan(std::move(times), 1.0).significance_sigma;
    EXPECT_GT(sigma, prev);
    prev = sigma;
  }
}

TEST(RateTrigger, ShortSpikeFoundOnShortTimescale) {
  TriggerConfig cfg;
  cfg.background_rate_hz = 3000.0;
  const RateTrigger trigger(cfg);
  core::Rng rng(4);
  auto times = uniform_times(3000.0, 1.0, rng);
  // A 10 ms spike: only the short windows resolve it cleanly.
  for (int i = 0; i < 120; ++i) times.push_back(rng.uniform(0.700, 0.710));
  const auto result = trigger.scan(std::move(times), 1.0);
  ASSERT_TRUE(result.triggered);
  EXPECT_LE(result.t_end - result.t_start, 0.065);
}

TEST(RateTrigger, ShuffledArrivalMatchesSortedBitIdentical) {
  // Readout links deliver events out of order; the scan's rate
  // estimate must not depend on arrival order at all.
  core::Rng rng(41);
  TriggerConfig cfg;
  cfg.background_rate_hz = 900.0;
  const RateTrigger trigger(cfg);

  std::vector<double> sorted_times = uniform_times(900.0, 1.0, rng);
  for (int i = 0; i < 150; ++i)
    sorted_times.push_back(rng.uniform(0.300, 0.330));
  std::sort(sorted_times.begin(), sorted_times.end());

  std::vector<double> shuffled = sorted_times;
  for (std::size_t i = shuffled.size(); i > 1; --i)
    std::swap(shuffled[i - 1],
              shuffled[static_cast<std::size_t>(rng.uniform_index(i))]);
  ASSERT_NE(shuffled, sorted_times);  // The shuffle actually shuffled.

  const auto a = trigger.scan(std::move(sorted_times), 1.0);
  const auto b = trigger.scan(std::move(shuffled), 1.0);
  EXPECT_EQ(a.triggered, b.triggered);
  EXPECT_EQ(a.significance_sigma, b.significance_sigma);
  EXPECT_EQ(a.t_start, b.t_start);
  EXPECT_EQ(a.t_end, b.t_end);
  EXPECT_EQ(a.counts, b.counts);
}

TEST(RateTrigger, NonFiniteTimesAreIgnoredAndCounted) {
  // A NaN in the time stream would break std::sort's strict weak
  // ordering (undefined behavior) and poison the binary-search window
  // counts; the scan must drop such entries, count them, and return
  // the same answer as a clean stream.
  core::Rng rng(42);
  TriggerConfig cfg;
  cfg.background_rate_hz = 900.0;
  const RateTrigger trigger(cfg);

  std::vector<double> clean = uniform_times(900.0, 1.0, rng);
  for (int i = 0; i < 80; ++i) clean.push_back(rng.uniform(0.500, 0.540));
  std::vector<double> dirty = clean;
  dirty.insert(dirty.begin() + 3,
               std::numeric_limits<double>::quiet_NaN());
  dirty.push_back(std::numeric_limits<double>::infinity());
  dirty.push_back(-std::numeric_limits<double>::infinity());

  core::telemetry::set_enabled(true);
  const auto before = core::telemetry::snapshot();
  const auto a = trigger.scan(std::move(clean), 1.0);
  const auto mid = core::telemetry::snapshot();
  const auto b = trigger.scan(std::move(dirty), 1.0);
  const auto after = core::telemetry::snapshot();
  core::telemetry::set_enabled(false);

  EXPECT_EQ(a.significance_sigma, b.significance_sigma);
  EXPECT_EQ(a.t_start, b.t_start);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(
      mid.since(before).counters.at("trigger.times_rejected.non_finite"), 0u);
  EXPECT_EQ(
      after.since(mid).counters.at("trigger.times_rejected.non_finite"), 3u);
}

TEST(RateTrigger, ConfigValidation) {
  TriggerConfig cfg;
  cfg.window_sizes_s = {};
  EXPECT_THROW(RateTrigger{cfg}, std::invalid_argument);
  cfg = TriggerConfig{};
  cfg.stride_fraction = 0.0;
  EXPECT_THROW(RateTrigger{cfg}, std::invalid_argument);
}

// ---------------------------------------------------------------------
// scan_all: every over-threshold episode, not just the champion.

TEST(ScanAll, QuietBackgroundYieldsNoIntervals) {
  TriggerConfig cfg;
  cfg.background_rate_hz = 3000.0;
  const RateTrigger trigger(cfg);
  core::Rng rng(50);
  EXPECT_TRUE(trigger.scan_all(uniform_times(3000.0, 1.0, rng), 1.0).empty());
}

TEST(ScanAll, SingleBurstYieldsOneIntervalMatchingScan) {
  TriggerConfig cfg;
  cfg.background_rate_hz = 3000.0;
  const RateTrigger trigger(cfg);
  core::Rng rng(51);
  auto times = uniform_times(3000.0, 1.0, rng);
  for (int i = 0; i < 400; ++i) times.push_back(rng.uniform(0.30, 0.40));

  const auto best = trigger.scan(times, 1.0);
  const auto intervals = trigger.scan_all(times, 1.0);
  ASSERT_EQ(intervals.size(), 1u);
  // The merged episode carries the champion window's statistics and
  // covers it.
  EXPECT_EQ(intervals[0].significance_sigma, best.significance_sigma);
  EXPECT_EQ(intervals[0].counts, best.counts);
  EXPECT_LE(intervals[0].t_start, best.t_start);
  EXPECT_GE(intervals[0].t_end, best.t_end);
}

TEST(ScanAll, TwoSeparatedSpikesYieldTwoOrderedIntervals) {
  TriggerConfig cfg;
  cfg.background_rate_hz = 3000.0;
  const RateTrigger trigger(cfg);
  core::Rng rng(52);
  auto times = uniform_times(3000.0, 4.0, rng);
  for (int i = 0; i < 500; ++i) times.push_back(rng.uniform(0.50, 0.60));
  for (int i = 0; i < 500; ++i) times.push_back(rng.uniform(2.80, 2.90));

  const auto intervals = trigger.scan_all(std::move(times), 4.0);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_LT(intervals[0].t_end, intervals[1].t_start);
  // Each episode localizes its own spike.
  EXPECT_LT(intervals[0].t_start, 0.60);
  EXPECT_GT(intervals[0].t_end, 0.50);
  EXPECT_LT(intervals[1].t_start, 2.90);
  EXPECT_GT(intervals[1].t_end, 2.80);
  EXPECT_GE(intervals[0].significance_sigma, cfg.threshold_sigma);
  EXPECT_GE(intervals[1].significance_sigma, cfg.threshold_sigma);
}

TEST(ScanAll, IntervalsAreDisjoint) {
  TriggerConfig cfg;
  cfg.background_rate_hz = 3000.0;
  const RateTrigger trigger(cfg);
  core::Rng rng(53);
  auto times = uniform_times(3000.0, 2.0, rng);
  // Overlapping excesses on different timescales must merge.
  for (int i = 0; i < 300; ++i) times.push_back(rng.uniform(0.80, 0.82));
  for (int i = 0; i < 600; ++i) times.push_back(rng.uniform(0.75, 1.05));
  const auto intervals = trigger.scan_all(std::move(times), 2.0);
  ASSERT_GE(intervals.size(), 1u);
  for (std::size_t i = 1; i < intervals.size(); ++i)
    EXPECT_GT(intervals[i].t_start, intervals[i - 1].t_end);
}

TEST(ScanAll, NonFiniteTimesAreDropped) {
  TriggerConfig cfg;
  cfg.background_rate_hz = 3000.0;
  const RateTrigger trigger(cfg);
  core::Rng rng(54);
  auto clean = uniform_times(3000.0, 1.0, rng);
  for (int i = 0; i < 400; ++i) clean.push_back(rng.uniform(0.30, 0.40));
  auto dirty = clean;
  dirty.push_back(std::numeric_limits<double>::quiet_NaN());
  dirty.push_back(std::numeric_limits<double>::infinity());

  const auto a = trigger.scan_all(std::move(clean), 1.0);
  const auto b = trigger.scan_all(std::move(dirty), 1.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_start, b[i].t_start);
    EXPECT_EQ(a[i].t_end, b[i].t_end);
    EXPECT_EQ(a[i].significance_sigma, b[i].significance_sigma);
  }
}

// ---------------------------------------------------------------------
// End-to-end: trigger on a simulated exposure.

TEST(RateTrigger, DetectsSimulatedBurst) {
  const detector::Geometry geometry;
  const auto material = detector::Material::csi();
  const sim::ExposureSimulator simulator(geometry, material);
  core::Rng rng(5);

  // Calibrate the background rate from a burst-free window.
  const auto quiet =
      simulator.simulate_background_only(sim::BackgroundConfig{}, rng);
  TriggerConfig cfg;
  cfg.background_rate_hz =
      RateTrigger::estimate_background_rate(quiet.events, 1.0);
  const RateTrigger trigger(cfg);

  // Background-only must stay quiet...
  const auto quiet2 =
      simulator.simulate_background_only(sim::BackgroundConfig{}, rng);
  EXPECT_FALSE(trigger.scan(quiet2.events, 1.0).triggered);

  // ...and a 1 MeV/cm^2 burst must fire decisively.
  const auto burst =
      simulator.simulate(sim::GrbConfig{}, sim::BackgroundConfig{}, rng);
  const auto result = trigger.scan(burst.events, 1.0);
  ASSERT_TRUE(result.triggered);
  EXPECT_GT(result.significance_sigma, 10.0);
  // The trigger window should overlap the light-curve pulse.
  const sim::LightCurveParams lc;  // Defaults used by GrbConfig.
  EXPECT_GT(result.t_end, lc.t_start);
  EXPECT_LT(result.t_start, lc.t_start + 5.0 * lc.decay);
}

}  // namespace
}  // namespace adapt::trigger
