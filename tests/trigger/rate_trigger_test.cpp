#include "trigger/rate_trigger.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "sim/exposure.hpp"

namespace adapt::trigger {
namespace {

// ---------------------------------------------------------------------
// The Poisson-significance statistic underneath the trigger.

TEST(PoissonSignificance, TailProbabilityKnownValues) {
  // P(X >= 1 | mu) = 1 - e^-mu.
  for (double mu : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(std::exp(core::poisson_tail_log_p(1, mu)),
                1.0 - std::exp(-mu), 1e-10);
  }
  // P(X >= k | 0) = 0 for k > 0; P(X >= 0 | mu) = 1.
  EXPECT_EQ(core::poisson_tail_log_p(0, 5.0), 0.0);
  EXPECT_TRUE(std::isinf(core::poisson_tail_log_p(3, 0.0)));
}

TEST(PoissonSignificance, MatchesNormalApproximationForLargeMu) {
  // At mu = 10000, k = 10300 (3 sigma) the exact tail must agree with
  // the Gaussian to a few percent in sigma.
  const double sigma = core::poisson_significance_sigma(10300, 10000.0);
  EXPECT_NEAR(sigma, 3.0, 0.1);
}

TEST(PoissonSignificance, MonotonicInCounts) {
  double prev = 0.0;
  for (std::uint64_t k = 100; k <= 200; k += 10) {
    const double s = core::poisson_significance_sigma(k, 100.0);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_GT(prev, 5.0);
}

TEST(PoissonSignificance, UnderFluctuationIsZero) {
  EXPECT_DOUBLE_EQ(core::poisson_significance_sigma(50, 100.0), 0.0);
}

TEST(NormalQuantile, RoundTripsKnownPoints) {
  EXPECT_NEAR(core::normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(core::normal_quantile(0.8413447), 1.0, 1e-4);
  EXPECT_NEAR(core::normal_quantile(0.9772499), 2.0, 1e-4);
  EXPECT_NEAR(core::normal_quantile(1.0 - 2.866516e-7), 5.0, 1e-3);
  EXPECT_THROW(core::normal_quantile(0.0), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Trigger behaviour on synthetic time streams.

std::vector<double> uniform_times(double rate_hz, double exposure_s,
                                  core::Rng& rng) {
  const auto n = rng.poisson(rate_hz * exposure_s);
  std::vector<double> times;
  times.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    times.push_back(rng.uniform(0.0, exposure_s));
  return times;
}

TEST(RateTrigger, QuietBackgroundDoesNotTrigger) {
  TriggerConfig cfg;
  cfg.background_rate_hz = 3000.0;
  const RateTrigger trigger(cfg);
  core::Rng rng(1);
  int false_alarms = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto result =
        trigger.scan(uniform_times(3000.0, 1.0, rng), 1.0);
    if (result.triggered) ++false_alarms;
  }
  // 5-sigma threshold with ~500 correlated windows per trial: false
  // alarms should be absent at this sample size.
  EXPECT_EQ(false_alarms, 0);
}

TEST(RateTrigger, BurstOnTopOfBackgroundTriggers) {
  TriggerConfig cfg;
  cfg.background_rate_hz = 3000.0;
  const RateTrigger trigger(cfg);
  core::Rng rng(2);
  auto times = uniform_times(3000.0, 1.0, rng);
  // A burst: 400 extra events concentrated in [0.30, 0.40].
  for (int i = 0; i < 400; ++i) times.push_back(rng.uniform(0.30, 0.40));
  const auto result = trigger.scan(std::move(times), 1.0);
  ASSERT_TRUE(result.triggered);
  EXPECT_GT(result.significance_sigma, 5.0);
  // The best window must overlap the burst interval.
  EXPECT_LT(result.t_start, 0.40);
  EXPECT_GT(result.t_end, 0.30);
}

TEST(RateTrigger, SignificanceGrowsWithBurstStrength) {
  TriggerConfig cfg;
  cfg.background_rate_hz = 3000.0;
  const RateTrigger trigger(cfg);
  double prev = 0.0;
  for (const int extra : {100, 300, 900}) {
    core::Rng rng(3);
    auto times = uniform_times(3000.0, 1.0, rng);
    for (int i = 0; i < extra; ++i)
      times.push_back(rng.uniform(0.5, 0.6));
    const double sigma =
        trigger.scan(std::move(times), 1.0).significance_sigma;
    EXPECT_GT(sigma, prev);
    prev = sigma;
  }
}

TEST(RateTrigger, ShortSpikeFoundOnShortTimescale) {
  TriggerConfig cfg;
  cfg.background_rate_hz = 3000.0;
  const RateTrigger trigger(cfg);
  core::Rng rng(4);
  auto times = uniform_times(3000.0, 1.0, rng);
  // A 10 ms spike: only the short windows resolve it cleanly.
  for (int i = 0; i < 120; ++i) times.push_back(rng.uniform(0.700, 0.710));
  const auto result = trigger.scan(std::move(times), 1.0);
  ASSERT_TRUE(result.triggered);
  EXPECT_LE(result.t_end - result.t_start, 0.065);
}

TEST(RateTrigger, ConfigValidation) {
  TriggerConfig cfg;
  cfg.window_sizes_s = {};
  EXPECT_THROW(RateTrigger{cfg}, std::invalid_argument);
  cfg = TriggerConfig{};
  cfg.stride_fraction = 0.0;
  EXPECT_THROW(RateTrigger{cfg}, std::invalid_argument);
}

// ---------------------------------------------------------------------
// End-to-end: trigger on a simulated exposure.

TEST(RateTrigger, DetectsSimulatedBurst) {
  const detector::Geometry geometry;
  const auto material = detector::Material::csi();
  const sim::ExposureSimulator simulator(geometry, material);
  core::Rng rng(5);

  // Calibrate the background rate from a burst-free window.
  const auto quiet =
      simulator.simulate_background_only(sim::BackgroundConfig{}, rng);
  TriggerConfig cfg;
  cfg.background_rate_hz =
      RateTrigger::estimate_background_rate(quiet.events, 1.0);
  const RateTrigger trigger(cfg);

  // Background-only must stay quiet...
  const auto quiet2 =
      simulator.simulate_background_only(sim::BackgroundConfig{}, rng);
  EXPECT_FALSE(trigger.scan(quiet2.events, 1.0).triggered);

  // ...and a 1 MeV/cm^2 burst must fire decisively.
  const auto burst =
      simulator.simulate(sim::GrbConfig{}, sim::BackgroundConfig{}, rng);
  const auto result = trigger.scan(burst.events, 1.0);
  ASSERT_TRUE(result.triggered);
  EXPECT_GT(result.significance_sigma, 10.0);
  // The trigger window should overlap the light-curve pulse.
  const sim::LightCurveParams lc;  // Defaults used by GrbConfig.
  EXPECT_GT(result.t_end, lc.t_start);
  EXPECT_LT(result.t_start, lc.t_start + 5.0 * lc.decay);
}

}  // namespace
}  // namespace adapt::trigger
