// placeholder
