#include "loc/likelihood.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/rng.hpp"

namespace adapt::loc {
namespace {

recon::ComptonRing make_ring(const core::Vec3& axis, double eta,
                             double d_eta) {
  recon::ComptonRing r;
  r.axis = axis.normalized();
  r.eta = eta;
  r.d_eta = d_eta;
  return r;
}

TEST(Likelihood, ResidualIsStandardized) {
  const auto ring = make_ring({0, 0, 1}, 0.5, 0.1);
  // c.s for s = +z is 1.0; residual = (1.0 - 0.5) / 0.1 = 5.
  EXPECT_NEAR(ring_residual(ring, {0, 0, 1}), 5.0, 1e-12);
}

TEST(Likelihood, ResidualZeroOnCone) {
  const auto ring = make_ring({0, 0, 1}, 0.5, 0.1);
  // Direction at 60 degrees from the axis has cosine 0.5.
  const core::Vec3 s = core::from_spherical(std::acos(0.5), 1.0);
  EXPECT_NEAR(ring_residual(ring, s), 0.0, 1e-12);
}

TEST(Likelihood, InvalidDEtaRejected) {
  auto ring = make_ring({0, 0, 1}, 0.5, 0.0);
  EXPECT_THROW(ring_residual(ring, {0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(ring_weight(ring), std::invalid_argument);
}

TEST(Likelihood, JointNllIsHalfSumOfSquares) {
  std::vector<recon::ComptonRing> rings;
  rings.push_back(make_ring({0, 0, 1}, 0.8, 0.1));
  rings.push_back(make_ring({1, 0, 0}, 0.0, 0.2));
  const core::Vec3 s{0, 0, 1};
  const double r1 = (1.0 - 0.8) / 0.1;
  const double r2 = (0.0 - 0.0) / 0.2;
  EXPECT_NEAR(neg_log_likelihood(rings, s),
              0.5 * (r1 * r1 + r2 * r2), 1e-12);
}

TEST(Likelihood, WeightIsInverseVariance) {
  const auto ring = make_ring({0, 0, 1}, 0.5, 0.05);
  EXPECT_NEAR(ring_weight(ring), 1.0 / (0.05 * 0.05), 1e-9);
}

TEST(Likelihood, TruncatedCapsOutlierContribution) {
  std::vector<recon::ComptonRing> rings;
  // Residual 50 sigma: quadratic loss would be 1250; capped at
  // 0.5 * 3^2 = 4.5.
  rings.push_back(make_ring({0, 0, 1}, -1.0, 0.04));
  const core::Vec3 s{0, 0, 1};
  EXPECT_GT(neg_log_likelihood(rings, s), 1000.0);
  EXPECT_NEAR(truncated_neg_log_likelihood(rings, s, 3.0), 4.5, 1e-9);
}

TEST(Likelihood, TruncatedMatchesQuadraticForInliers) {
  std::vector<recon::ComptonRing> rings;
  rings.push_back(make_ring({0, 0, 1}, 0.9, 0.1));  // Residual 1.
  const core::Vec3 s{0, 0, 1};
  EXPECT_NEAR(truncated_neg_log_likelihood(rings, s, 3.0),
              neg_log_likelihood(rings, s), 1e-12);
}

TEST(Likelihood, TruncatedPrefersTrueSourceUnderContamination) {
  // 30 signal rings around a known source + 70 random rings: the
  // truncated NLL at the source beats a random direction, while the
  // plain quadratic NLL may not (that is its reason to exist).
  core::Rng rng(5);
  const core::Vec3 s = core::from_spherical(0.5, 1.0);
  std::vector<recon::ComptonRing> rings;
  for (int i = 0; i < 30; ++i) {
    const core::Vec3 axis = rng.isotropic_direction();
    rings.push_back(make_ring(axis, axis.dot(s) + rng.normal(0, 0.03), 0.03));
  }
  for (int i = 0; i < 70; ++i) {
    rings.push_back(
        make_ring(rng.isotropic_direction(), rng.uniform(-1, 1), 0.03));
  }
  double worse = 0;
  for (int i = 0; i < 50; ++i) {
    const core::Vec3 other = rng.isotropic_direction();
    if (truncated_neg_log_likelihood(rings, other) >
        truncated_neg_log_likelihood(rings, s))
      ++worse;
  }
  EXPECT_GE(worse, 48);  // Nearly every random direction scores worse.
}

}  // namespace
}  // namespace adapt::loc
