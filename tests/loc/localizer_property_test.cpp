/// Parameterized property sweeps over the localizer: statistical
/// behaviour that must hold across ring counts, widths, contamination
/// levels, and source positions.

#include <gtest/gtest.h>

#include <cmath>

#include "core/units.hpp"
#include "loc/localizer.hpp"

namespace adapt::loc {
namespace {

std::vector<recon::ComptonRing> mixed_rings(const core::Vec3& s,
                                            int n_signal, int n_background,
                                            double d_eta, core::Rng& rng) {
  std::vector<recon::ComptonRing> rings;
  for (int i = 0; i < n_signal; ++i) {
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = r.axis.dot(s) + rng.normal(0.0, d_eta);
    if (r.eta < -1.0 || r.eta > 1.0) {
      --i;
      continue;
    }
    r.d_eta = d_eta;
    rings.push_back(r);
  }
  for (int i = 0; i < n_background; ++i) {
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = rng.uniform(-1.0, 1.0);
    r.d_eta = d_eta;
    rings.push_back(r);
  }
  return rings;
}

// ---------------------------------------------------------------------
// Accuracy scaling with the ring count (clean data).

class RingCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingCountSweep, LocalizesWithinStatisticalExpectation) {
  const int n = GetParam();
  const double d_eta = 0.05;
  core::Rng rng(static_cast<std::uint64_t>(n) * 7 + 1);
  const core::Vec3 s = core::from_spherical(0.6, 1.1);
  const auto rings = mixed_rings(s, n, 0, d_eta, rng);
  Localizer loc;
  const auto result = loc.localize(rings, rng);
  ASSERT_TRUE(result.valid);
  // Statistical floor ~ d_eta / sqrt(n) radians (cosine-space error
  // maps near-linearly to angle away from the poles); allow 8x.
  const double bound =
      core::rad_to_deg(8.0 * d_eta / std::sqrt(static_cast<double>(n)));
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)),
            std::max(bound, 0.3))
      << "n = " << n;
}

INSTANTIATE_TEST_SUITE_P(Counts, RingCountSweep,
                         ::testing::Values(20, 50, 100, 200, 400, 800));

// ---------------------------------------------------------------------
// Robustness vs contamination fraction.

class ContaminationSweep : public ::testing::TestWithParam<double> {};

TEST_P(ContaminationSweep, SurvivesBackgroundFraction) {
  const double bkg_ratio = GetParam();
  const int n_signal = 150;
  const int n_bkg = static_cast<int>(n_signal * bkg_ratio);
  core::Rng rng(static_cast<std::uint64_t>(bkg_ratio * 100) + 3);
  const core::Vec3 s = core::from_spherical(0.4, -0.8);
  const auto rings = mixed_rings(s, n_signal, n_bkg, 0.05, rng);
  Localizer loc;
  const auto result = loc.localize(rings, rng);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)), 3.0)
      << "background ratio " << bkg_ratio;
}

INSTANTIATE_TEST_SUITE_P(Ratios, ContaminationSweep,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 3.0));

// ---------------------------------------------------------------------
// Source-position coverage of the field of view.

struct SkyPoint {
  double polar_deg;
  double azimuth_deg;
};

class SkySweep : public ::testing::TestWithParam<SkyPoint> {};

TEST_P(SkySweep, LocalizesAnywhereInFieldOfView) {
  const SkyPoint p = GetParam();
  core::Rng rng(static_cast<std::uint64_t>(p.polar_deg * 10 +
                                           p.azimuth_deg) +
                11);
  const core::Vec3 s = core::from_spherical(core::deg_to_rad(p.polar_deg),
                                            core::deg_to_rad(p.azimuth_deg));
  const auto rings = mixed_rings(s, 200, 200, 0.05, rng);
  Localizer loc;
  const auto result = loc.localize(rings, rng);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)), 3.0);
}

INSTANTIATE_TEST_SUITE_P(
    FieldOfView, SkySweep,
    ::testing::Values(SkyPoint{0.0, 0.0}, SkyPoint{15.0, 45.0},
                      SkyPoint{30.0, 170.0}, SkyPoint{45.0, -90.0},
                      SkyPoint{60.0, 10.0}, SkyPoint{75.0, -135.0},
                      SkyPoint{85.0, 80.0}));

// ---------------------------------------------------------------------
// Honest d_eta inflation must not break localization (only widen it).

class WidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(WidthSweep, WiderRingsStillConverge) {
  const double d_eta = GetParam();
  core::Rng rng(static_cast<std::uint64_t>(d_eta * 1e4) + 17);
  const core::Vec3 s = core::from_spherical(0.5, 0.0);
  const auto rings = mixed_rings(s, 400, 0, d_eta, rng);
  Localizer loc;
  const auto result = loc.localize(rings, rng);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)),
            core::rad_to_deg(10.0 * d_eta));
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(0.01, 0.03, 0.08, 0.15, 0.3));

}  // namespace
}  // namespace adapt::loc
