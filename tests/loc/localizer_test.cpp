#include "loc/localizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/telemetry.hpp"
#include "core/units.hpp"
#include "loc/least_squares.hpp"
#include "loc/likelihood.hpp"

namespace adapt::loc {
namespace {

recon::ComptonRing ring_for_source(const core::Vec3& s, core::Rng& rng,
                                   double d_eta, double eta_noise) {
  recon::ComptonRing r;
  r.axis = rng.isotropic_direction();
  r.eta = r.axis.dot(s) + rng.normal(0.0, eta_noise);
  r.d_eta = d_eta;
  return r;
}

std::vector<recon::ComptonRing> signal_rings(const core::Vec3& s, int n,
                                             core::Rng& rng,
                                             double d_eta = 0.05) {
  std::vector<recon::ComptonRing> rings;
  rings.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto r = ring_for_source(s, rng, d_eta, d_eta);
    if (r.eta < -1.0 || r.eta > 1.0) {
      --i;
      continue;
    }
    rings.push_back(r);
  }
  return rings;
}

std::vector<recon::ComptonRing> background_rings(int n, core::Rng& rng,
                                                 double d_eta = 0.05) {
  std::vector<recon::ComptonRing> rings;
  rings.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = rng.uniform(-1.0, 1.0);
    r.d_eta = d_eta;
    rings.push_back(r);
  }
  return rings;
}

TEST(FitDirection, ExactOnCleanRings) {
  core::Rng rng(1);
  const core::Vec3 s = core::from_spherical(0.6, -0.4);
  auto rings = signal_rings(s, 100, rng, 0.05);
  // Remove the noise for an exactness check.
  for (auto& r : rings) r.eta = r.axis.dot(s);
  const auto fit = fit_direction(rings);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(core::rad_to_deg(core::angle_between(*fit, s)), 1e-4);
}

TEST(FitDirection, AccurateUnderGaussianNoise) {
  core::Rng rng(2);
  const core::Vec3 s = core::from_spherical(0.9, 2.0);
  const auto rings = signal_rings(s, 400, rng, 0.05);
  const auto fit = fit_direction(rings);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(core::rad_to_deg(core::angle_between(*fit, s)), 1.0);
}

TEST(FitDirection, WeightsDownThickRings) {
  core::Rng rng(3);
  const core::Vec3 s{0, 0, 1};
  auto rings = signal_rings(s, 200, rng, 0.02);
  // Add heavily mis-measured rings but with honest (large) d_eta:
  // the fit should barely move.
  for (int i = 0; i < 50; ++i) {
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = rng.uniform(-1.0, 1.0);
    r.d_eta = 5.0;  // Weight 1/25 vs 1/0.0004.
    rings.push_back(r);
  }
  const auto fit = fit_direction(rings);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(core::rad_to_deg(core::angle_between(*fit, s)), 1.0);
}

TEST(FitDirection, MaskRestrictsRings) {
  core::Rng rng(4);
  const core::Vec3 s{0, 0, 1};
  const core::Vec3 wrong = core::from_spherical(1.2, 0.0);
  auto good = signal_rings(s, 100, rng, 0.05);
  auto bad = signal_rings(wrong, 100, rng, 0.05);
  std::vector<recon::ComptonRing> all = good;
  all.insert(all.end(), bad.begin(), bad.end());
  std::vector<std::uint8_t> mask(all.size(), 0);
  for (std::size_t i = 0; i < good.size(); ++i) mask[i] = 1;
  const auto fit = fit_direction(
      all, std::span<const std::uint8_t>(mask.data(), mask.size()));
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(core::rad_to_deg(core::angle_between(*fit, s)), 2.0);
}

TEST(FitDirection, TooFewRingsReturnsNullopt) {
  core::Rng rng(5);
  const auto rings = signal_rings({0, 0, 1}, 1, rng);
  EXPECT_FALSE(fit_direction(rings).has_value());
  EXPECT_FALSE(fit_direction({}).has_value());
}

TEST(FitDirection, MaskSizeMismatchThrows) {
  core::Rng rng(6);
  const auto rings = signal_rings({0, 0, 1}, 10, rng);
  const std::vector<std::uint8_t> mask(3, 1);
  EXPECT_THROW(
      fit_direction(rings,
                    std::span<const std::uint8_t>(mask.data(), mask.size())),
      std::invalid_argument);
}

TEST(FitDirection, InitialGuessSpeedsConvergenceToSameAnswer) {
  core::Rng rng(7);
  const core::Vec3 s = core::from_spherical(0.4, 0.9);
  const auto rings = signal_rings(s, 300, rng, 0.04);
  const auto cold = fit_direction(rings);
  const auto warm = fit_direction(rings, {}, {}, s);
  ASSERT_TRUE(cold && warm);
  EXPECT_LT(core::rad_to_deg(core::angle_between(*cold, *warm)), 0.05);
}

TEST(Localizer, ApproximationLandsNearTruth) {
  core::Rng rng(8);
  const core::Vec3 s = core::from_spherical(0.7, -2.0);
  const auto rings = signal_rings(s, 150, rng, 0.05);
  Localizer loc;
  const auto seed = loc.approximate(rings, rng);
  ASSERT_TRUE(seed.has_value());
  EXPECT_LT(core::rad_to_deg(core::angle_between(*seed, s)), 12.0);
}

TEST(Localizer, CandidatesAreDistinct) {
  core::Rng rng(9);
  const auto rings = signal_rings({0, 0, 1}, 150, rng, 0.05);
  Localizer loc;
  const auto seeds = loc.approximate_candidates(rings, rng);
  ASSERT_GE(seeds.size(), 2u);
  for (std::size_t i = 0; i < seeds.size(); ++i)
    for (std::size_t j = i + 1; j < seeds.size(); ++j)
      EXPECT_LT(seeds[i].dot(seeds[j]), 0.9951);
}

TEST(Localizer, UpperSkyRestrictionRespected) {
  core::Rng rng(10);
  const auto rings = signal_rings({0, 0, 1}, 100, rng, 0.05);
  LocalizerConfig cfg;
  cfg.approximation.restrict_to_upper_sky = true;
  Localizer loc(cfg);
  const auto seeds = loc.approximate_candidates(rings, rng);
  for (const auto& seed : seeds) EXPECT_GE(seed.z, 0.0);
}

TEST(Localizer, FullPipelineSubDegreeOnCleanData) {
  core::Rng rng(11);
  const core::Vec3 s = core::from_spherical(0.5, 0.5);
  const auto rings = signal_rings(s, 250, rng, 0.05);
  Localizer loc;
  const auto result = loc.localize(rings, rng);
  ASSERT_TRUE(result.valid);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)), 1.0);
  EXPECT_GT(result.rings_used, 150u);
  EXPECT_EQ(result.rings_total, rings.size());
}

TEST(Localizer, RobustToMajorityBackground) {
  // The headline robustness property: 2.5x random background rings.
  core::Rng rng(12);
  const core::Vec3 s = core::from_spherical(0.3, 1.5);
  auto rings = signal_rings(s, 120, rng, 0.05);
  const auto bkg = background_rings(300, rng, 0.05);
  rings.insert(rings.end(), bkg.begin(), bkg.end());
  Localizer loc;
  const auto result = loc.localize(rings, rng);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)), 3.0);
}

TEST(Localizer, EmptyInputInvalid) {
  core::Rng rng(13);
  Localizer loc;
  const auto result = loc.localize({}, rng);
  EXPECT_FALSE(result.valid);
}

TEST(Localizer, RefineImprovesOnRoughSeed) {
  core::Rng rng(14);
  const core::Vec3 s = core::from_spherical(0.8, -1.0);
  const auto rings = signal_rings(s, 200, rng, 0.05);
  // Seed 15 degrees off.
  const core::Vec3 rough =
      core::rotate_about_axis(s, core::deg_to_rad(15.0), 0.7);
  Localizer loc;
  const auto result = loc.refine(rings, rough);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)), 1.5);
}

TEST(RingUsable, ClassifiesDegenerateRings) {
  core::Rng rng(20);
  recon::ComptonRing good = ring_for_source({0, 0, 1}, rng, 0.05, 0.0);
  EXPECT_TRUE(ring_usable(good));

  recon::ComptonRing r = good;
  r.d_eta = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ring_usable(r));
  r = good;
  r.d_eta = 0.0;
  EXPECT_FALSE(ring_usable(r));
  r = good;
  r.d_eta = -0.05;
  EXPECT_FALSE(ring_usable(r));
  r = good;
  r.eta = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ring_usable(r));
  r = good;
  r.axis.y = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ring_usable(r));
}

TEST(UsableRings, CleanInputReturnsSameSpanWithoutCopy) {
  core::Rng rng(21);
  const auto rings = signal_rings({0, 0, 1}, 30, rng, 0.05);
  std::vector<recon::ComptonRing> storage;
  const auto usable = usable_rings(rings, storage);
  EXPECT_EQ(usable.data(), rings.data());
  EXPECT_EQ(usable.size(), rings.size());
  EXPECT_TRUE(storage.empty());
}

TEST(Localizer, SkipsBadDetaRingsAndCountsThem) {
  // A NaN or zero d_eta ring must neither throw nor poison the NLL —
  // the localizer drops it (counted under loc.rings_rejected.bad_deta)
  // and localizes off the remaining good rings.
  core::Rng rng(22);
  const core::Vec3 s = core::from_spherical(0.5, 0.8);
  auto rings = signal_rings(s, 200, rng, 0.05);
  auto poison_nan = ring_for_source(s, rng, 0.05, 0.0);
  poison_nan.d_eta = std::numeric_limits<double>::quiet_NaN();
  auto poison_zero = ring_for_source(s, rng, 0.05, 0.0);
  poison_zero.d_eta = 0.0;
  auto poison_axis = ring_for_source(s, rng, 0.05, 0.0);
  poison_axis.axis.x = std::numeric_limits<double>::quiet_NaN();
  rings.insert(rings.begin() + 10, poison_nan);
  rings.insert(rings.begin() + 50, poison_zero);
  rings.push_back(poison_axis);

  namespace tm = core::telemetry;
  const bool was_enabled = tm::enabled();
  tm::set_enabled(true);
  const std::uint64_t bad_deta_before =
      tm::counter("loc.rings_rejected.bad_deta").value();
  const std::uint64_t non_finite_before =
      tm::counter("loc.rings_rejected.non_finite").value();

  Localizer loc;
  const auto result = loc.localize(rings, rng);

  EXPECT_EQ(tm::counter("loc.rings_rejected.bad_deta").value(),
            bad_deta_before + 2);
  EXPECT_EQ(tm::counter("loc.rings_rejected.non_finite").value(),
            non_finite_before + 1);
  tm::set_enabled(was_enabled);

  ASSERT_TRUE(result.valid);
  EXPECT_TRUE(std::isfinite(result.direction.x));
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)), 1.5);
  // rings_total still reports the raw input size, poisoned rings
  // included.
  EXPECT_EQ(result.rings_total, rings.size());
}

TEST(Localizer, AllRingsDegenerateIsInvalidNotACrash) {
  core::Rng rng(23);
  auto rings = signal_rings({0, 0, 1}, 20, rng, 0.05);
  for (auto& r : rings) r.d_eta = std::numeric_limits<double>::quiet_NaN();
  Localizer loc;
  const auto result = loc.localize(rings, rng);
  EXPECT_FALSE(result.valid);
}

TEST(Localizer, BadDetaDoesNotChangeTheAnswer) {
  // The surviving-ring fit must be bit-identical to a run that never
  // saw the degenerate rings.
  const core::Vec3 s = core::from_spherical(0.4, -0.6);
  core::Rng gen_rng(24);
  const auto clean = signal_rings(s, 150, gen_rng, 0.05);
  auto dirty = clean;
  recon::ComptonRing bad;
  bad.axis = {0, 0, 1};
  bad.eta = 0.5;
  bad.d_eta = 0.0;
  dirty.push_back(bad);

  Localizer loc;
  core::Rng rng_a(7);
  core::Rng rng_b(7);
  const auto a = loc.localize(clean, rng_a);
  const auto b = loc.localize(dirty, rng_b);
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_EQ(a.direction.x, b.direction.x);
  EXPECT_EQ(a.direction.y, b.direction.y);
  EXPECT_EQ(a.direction.z, b.direction.z);
  EXPECT_EQ(a.rings_used, b.rings_used);
}

TEST(Localizer, AllCandidatesFilteredByUpperSkyIsInvalid) {
  // Every ring's cone lies entirely below the horizon: axis straight
  // down, small opening angle.  With restrict_to_upper_sky (the
  // default) every candidate direction is filtered, so localization
  // has no seeds — the result must say invalid, not return a stale or
  // default direction that looks like an estimate.
  core::Rng rng(31);
  std::vector<recon::ComptonRing> rings;
  for (int i = 0; i < 25; ++i) {
    recon::ComptonRing r;
    r.axis = {0.0, 0.0, -1.0};
    r.eta = 0.95;  // ~18 degree half-angle around -z: all z < 0.
    r.d_eta = 0.05;
    rings.push_back(r);
  }
  Localizer loc;
  ASSERT_TRUE(loc.config().approximation.restrict_to_upper_sky);
  const auto result = loc.localize(rings, rng);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.rings_used, 0u);
  EXPECT_EQ(result.rings_total, rings.size());
  // The direction slot holds the zero default, not a fabricated unit
  // vector.
  EXPECT_EQ(result.direction.x, 0.0);
  EXPECT_EQ(result.direction.y, 0.0);
  EXPECT_EQ(result.direction.z, 0.0);
  // The same population is localizable with the restriction off —
  // proving the invalidity above came from the filter, nothing else.
  LocalizerConfig open_cfg;
  open_cfg.approximation.restrict_to_upper_sky = false;
  core::Rng rng2(31);
  const auto open_result = Localizer(open_cfg).localize(rings, rng2);
  EXPECT_TRUE(open_result.valid);
}

TEST(Localizer, NoSeedExitsAreCounted) {
  core::telemetry::set_enabled(true);
  const auto before = core::telemetry::snapshot();
  core::Rng rng(32);
  std::vector<recon::ComptonRing> rings;
  for (int i = 0; i < 5; ++i) {
    recon::ComptonRing r;
    r.axis = {0.0, 0.0, -1.0};
    r.eta = 0.95;
    r.d_eta = 0.05;
    rings.push_back(r);
  }
  EXPECT_FALSE(Localizer().localize(rings, rng).valid);
  const auto delta = core::telemetry::snapshot().since(before);
  EXPECT_EQ(delta.counters.at("loc.localize_invalid.no_seeds"), 1u);
  core::telemetry::set_enabled(false);
}

TEST(Localizer, RefineWithTooFewUsableRingsStaysInvalid) {
  core::Rng rng(33);
  const auto one_ring = signal_rings({0, 0, 1}, 1, rng, 0.05);
  Localizer loc;
  const auto result = loc.refine(one_ring, {0.0, 0.0, 1.0});
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.rings_used, 0u);
  // refine() documents returning the (normalized) initial direction on
  // failure — still flagged invalid so no caller can mistake it for a
  // fit.
  EXPECT_EQ(result.direction.z, 1.0);
}

TEST(Localizer, ThinnerRingsGiveTighterLocalization) {
  core::Rng rng(15);
  const core::Vec3 s = core::from_spherical(0.6, 0.0);
  Localizer loc;
  double errors[2];
  int idx = 0;
  for (double d_eta : {0.15, 0.01}) {
    core::Rng local_rng(99);
    const auto rings = signal_rings(s, 300, local_rng, d_eta);
    core::Rng loc_rng(7);
    const auto result = loc.localize(rings, loc_rng);
    ASSERT_TRUE(result.valid);
    errors[idx++] = core::angle_between(result.direction, s);
  }
  EXPECT_LT(errors[1], errors[0]);
}

}  // namespace
}  // namespace adapt::loc
