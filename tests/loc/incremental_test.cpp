#include "loc/incremental.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "loc/skymap.hpp"

namespace adapt::loc {
namespace {

std::vector<recon::ComptonRing> rings_for(const core::Vec3& s, int n,
                                          double d_eta, core::Rng& rng,
                                          int n_background = 0) {
  std::vector<recon::ComptonRing> rings;
  for (int i = 0; i < n; ++i) {
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = r.axis.dot(s) + rng.normal(0.0, d_eta);
    if (r.eta < -1.0 || r.eta > 1.0) {
      --i;
      continue;
    }
    r.d_eta = d_eta;
    rings.push_back(r);
  }
  for (int i = 0; i < n_background; ++i) {
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = rng.uniform(-1.0, 1.0);
    r.d_eta = d_eta;
    rings.push_back(r);
  }
  return rings;
}

/// Max relative per-pixel probability difference between two maps on
/// the same grid.
double max_rel_diff(const SkyMap& a, const SkyMap& b) {
  EXPECT_EQ(a.n_pixels(), b.n_pixels());
  double peak = 0.0;
  for (std::size_t i = 0; i < a.n_pixels(); ++i) {
    const core::Vec3 dir = a.grid().pixel_center(i);
    peak = std::max(peak, b.probability_at(dir));
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < a.n_pixels(); ++i) {
    const core::Vec3 dir = a.grid().pixel_center(i);
    worst = std::max(
        worst, std::abs(a.probability_at(dir) - b.probability_at(dir)));
  }
  return worst / peak;
}

TEST(IncrementalLocalizer, SnapshotMatchesBatchAtCheckpoints) {
  core::Rng rng(11);
  const core::Vec3 s = core::from_spherical(core::deg_to_rad(35.0),
                                            core::deg_to_rad(120.0));
  const auto rings = rings_for(s, 300, 0.05, rng, 60);

  IncrementalConfig ic;
  ic.resolution_deg = 2.0;
  IncrementalLocalizer inc(ic);
  SkyMapConfig bc;
  bc.resolution_deg = 2.0;

  // The documented contract (incremental.hpp): snapshot() agrees with
  // the batch recompute up to floating-point noise — the sums
  // associate differently and the accumulator uses the per-row
  // closed-form residual, so bit identity is not expected, but 1e-9
  // relative is orders below any physical signal.
  std::size_t fed = 0;
  for (const std::size_t checkpoint : {std::size_t{25}, std::size_t{100},
                                       std::size_t{300}}) {
    while (fed < checkpoint) inc.add_ring(rings[fed++]);
    SkyMap from_inc = inc.snapshot();
    const std::span<const recon::ComptonRing> prefix(rings.data(),
                                                     checkpoint);
    const SkyMap from_batch = SkyMap::compute(prefix, bc);
    EXPECT_LT(max_rel_diff(from_inc, from_batch), 1e-9)
        << "checkpoint " << checkpoint;
    EXPECT_LT(core::rad_to_deg(core::angle_between(from_inc.peak(),
                                                   from_batch.peak())),
              1e-9)
        << "checkpoint " << checkpoint;
    EXPECT_NEAR(from_inc.credible_region_area_deg2(0.68),
                from_batch.credible_region_area_deg2(0.68),
                1e-6 * from_batch.credible_region_area_deg2(0.68) +
                    from_batch.grid().pixel_solid_angle_deg2(0))
        << "checkpoint " << checkpoint;
  }
}

TEST(IncrementalLocalizer, RefineAllQueriesMatchBatch) {
  core::Rng rng(12);
  const core::Vec3 s = core::from_spherical(0.5, 1.2);
  const auto rings = rings_for(s, 150, 0.05, rng);

  IncrementalConfig ic;
  ic.resolution_deg = 2.0;
  ic.refine_all = true;
  IncrementalLocalizer inc(ic);
  inc.add_rings(rings);

  SkyMapConfig bc;
  bc.resolution_deg = 2.0;
  const SkyMap batch = SkyMap::compute(rings, bc);

  EXPECT_LT(core::rad_to_deg(core::angle_between(inc.peak(), batch.peak())),
            1e-9);
  EXPECT_NEAR(inc.credible_radius_deg(0.68), batch.credible_radius_deg(0.68),
              1e-6 * batch.credible_radius_deg(0.68) + 1e-9);
  EXPECT_NEAR(inc.probability_at(s), batch.probability_at(s),
              1e-9 * batch.probability_at(s));
}

TEST(IncrementalLocalizer, AdaptiveQueriesMatchBatchWithinCoarseScale) {
  core::Rng rng(13);
  const core::Vec3 s = core::from_spherical(core::deg_to_rad(40.0), 2.0);
  const auto rings = rings_for(s, 200, 0.05, rng, 40);

  IncrementalConfig ic;  // defaults: coarse_factor 4, mass 0.999
  IncrementalLocalizer inc(ic);
  inc.add_rings(rings);

  SkyMapConfig bc;
  const SkyMap batch = SkyMap::compute(rings, bc);

  // Adaptive mode approximates only the far tail (< 0.1% of mass) at
  // coarse resolution, so peak and credible radius agree with batch
  // within the fine pixel scale.
  EXPECT_LT(core::rad_to_deg(core::angle_between(inc.peak(), batch.peak())),
            ic.resolution_deg);
  const double batch_radius = batch.credible_radius_deg(0.68);
  EXPECT_NEAR(inc.credible_radius_deg(0.68), batch_radius,
              0.05 * batch_radius + ic.resolution_deg);
}

TEST(IncrementalLocalizer, DeterministicAcrossFeedingPatterns) {
  core::Rng rng(14);
  const core::Vec3 s = core::from_spherical(0.3, -1.0);
  const auto rings = rings_for(s, 120, 0.06, rng, 30);

  // refine_all removes the one source of history dependence (which
  // rows got refined when); replay-based refinement then guarantees
  // the final state does not depend on feeding pattern or query
  // timing.
  IncrementalConfig ic;
  ic.refine_all = true;
  IncrementalLocalizer one_at_a_time(ic);
  IncrementalLocalizer batched(ic);
  for (std::size_t i = 0; i < rings.size(); ++i) {
    one_at_a_time.add_ring(rings[i]);
    if (i % 40 == 0) (void)one_at_a_time.credible_radius_deg(0.68);
  }
  batched.add_rings(rings);

  // Bit identity, not tolerance: same adds in the same order.
  EXPECT_EQ(one_at_a_time.credible_radius_deg(0.68),
            batched.credible_radius_deg(0.68));
  EXPECT_EQ(one_at_a_time.probability_at(s), batched.probability_at(s));
  const core::Vec3 pa = one_at_a_time.peak();
  const core::Vec3 pb = batched.peak();
  EXPECT_EQ(pa.x, pb.x);
  EXPECT_EQ(pa.y, pb.y);
  EXPECT_EQ(pa.z, pb.z);
}

TEST(IncrementalLocalizer, AdaptiveQueryTimingShiftsOnlyTheTail) {
  core::Rng rng(19);
  const core::Vec3 s = core::from_spherical(0.3, -1.0);
  const auto rings = rings_for(s, 120, 0.06, rng, 30);

  // Adaptive mode refines rows based on the posterior *at query time*,
  // so interleaved queries can refine a superset of the rows a single
  // final query would.  The refined core's excess sums stay
  // bit-identical; what moves is the coarse-tail share of the
  // normalization, a few percent at worst (see incremental.hpp).
  IncrementalLocalizer interleaved;
  IncrementalLocalizer final_only;
  for (std::size_t i = 0; i < rings.size(); ++i) {
    interleaved.add_ring(rings[i]);
    if (i % 40 == 0) (void)interleaved.credible_radius_deg(0.68);
  }
  final_only.add_rings(rings);

  EXPECT_LT(core::rad_to_deg(core::angle_between(interleaved.peak(),
                                                 final_only.peak())),
            1e-9);
  EXPECT_NEAR(interleaved.credible_radius_deg(0.68),
              final_only.credible_radius_deg(0.68),
              0.02 * final_only.credible_radius_deg(0.68));
  EXPECT_NEAR(interleaved.probability_at(s), final_only.probability_at(s),
              0.10 * final_only.probability_at(s));
}

TEST(IncrementalLocalizer, UpdateCostSublinearInGridSize) {
  core::Rng rng(15);
  const core::Vec3 s = core::from_spherical(0.6, 0.8);
  const auto rings = rings_for(s, 100, 0.05, rng);

  IncrementalLocalizer inc;  // 1 deg grid, ~20k pixels
  inc.add_rings(rings);
  const double touched_per_ring =
      static_cast<double>(inc.pixels_touched_total()) /
      static_cast<double>(inc.n_rings());
  // A ring's truncation band covers a thin annulus; the update must
  // touch a small fraction of the grid or the accumulator degenerates
  // into a batch recompute.
  EXPECT_LT(touched_per_ring * 10.0,
            static_cast<double>(inc.fine_grid().n_pixels()));
}

TEST(IncrementalLocalizer, UnusableRingsRejectedAndCounted) {
  IncrementalLocalizer inc;
  recon::ComptonRing bad;
  bad.axis = {0.0, 0.0, 1.0};
  bad.eta = 0.5;
  bad.d_eta = 0.0;  // zero width: unusable for the likelihood
  EXPECT_EQ(inc.add_ring(bad), 0u);
  bad.d_eta = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(inc.add_ring(bad), 0u);
  EXPECT_EQ(inc.n_rings(), 0u);
  EXPECT_EQ(inc.rings_rejected(), 2u);
}

TEST(IncrementalLocalizer, EmptyAccumulatorIsUniformAndFinite) {
  IncrementalLocalizer inc;
  // No rings: zero excess everywhere is a *valid* (uniform) posterior,
  // not a degenerate one — and every query is finite (regression:
  // NaN-free by contract).
  EXPECT_FALSE(inc.degenerate());
  const double radius = inc.credible_radius_deg(0.68);
  EXPECT_TRUE(std::isfinite(radius));
  EXPECT_GT(radius, 0.0);
  EXPECT_GT(inc.probability_at({0.0, 0.0, 1.0}), 0.0);
  // 68% of a uniform hemisphere posterior is a large region.
  EXPECT_GT(inc.credible_region_area_deg2(0.68), 1e4);
}

TEST(IncrementalLocalizer, ContentDomainEnforced) {
  core::Rng rng(16);
  IncrementalLocalizer inc;
  inc.add_rings(rings_for({0.0, 0.0, 1.0}, 20, 0.05, rng));
  EXPECT_THROW(inc.credible_region_area_deg2(0.0), std::invalid_argument);
  EXPECT_THROW(inc.credible_region_area_deg2(1.0), std::invalid_argument);
  EXPECT_THROW(inc.credible_region_area_deg2(-0.3), std::invalid_argument);
  EXPECT_THROW(
      inc.credible_region_area_deg2(std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
}

TEST(IncrementalLocalizer, CoarseFactorOneMatchesFineEverywhere) {
  core::Rng rng(17);
  const auto rings = rings_for(core::from_spherical(0.7, 0.1), 80, 0.05,
                               rng);
  IncrementalConfig ic;
  ic.resolution_deg = 2.0;
  ic.coarse_factor = 1;
  IncrementalLocalizer inc(ic);
  inc.add_rings(rings);
  SkyMapConfig bc;
  bc.resolution_deg = 2.0;
  const SkyMap batch = SkyMap::compute(rings, bc);
  EXPECT_NEAR(inc.credible_radius_deg(0.9), batch.credible_radius_deg(0.9),
              1e-6 * batch.credible_radius_deg(0.9) + 1e-9);
}

TEST(IncrementalLocalizer, RefinementIsMonotone) {
  core::Rng rng(18);
  const auto rings = rings_for(core::from_spherical(0.5, 0.5), 150, 0.05,
                               rng);
  IncrementalLocalizer inc;
  std::size_t last = 0;
  for (std::size_t i = 0; i < rings.size(); ++i) {
    inc.add_ring(rings[i]);
    if (i % 30 == 29) {
      (void)inc.credible_radius_deg(0.68);
      const std::size_t refined = inc.refined_fine_rows();
      EXPECT_GE(refined, last);
      last = refined;
    }
  }
  EXPECT_GT(last, 0u);
}

}  // namespace
}  // namespace adapt::loc
