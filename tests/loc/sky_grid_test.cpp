#include "loc/sky_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/units.hpp"

namespace adapt::loc {
namespace {

TEST(SkyGrid, PixelCenterRoundTrips) {
  const SkyGrid grid(1.0, 90.0);
  // Every pixel's center must map back to that pixel — the seam where
  // the batch and incremental paths would otherwise drift apart.
  for (std::size_t i = 0; i < grid.n_pixels(); i += 7) {
    const auto back = grid.pixel_of(grid.pixel_center(i));
    ASSERT_TRUE(back.has_value()) << "pixel " << i;
    EXPECT_EQ(*back, i);
  }
}

TEST(SkyGrid, FieldOfViewEdgeIsInside) {
  const SkyGrid grid(1.0, 90.0);
  // A horizon vector sits exactly at polar = max_polar_deg; the edge
  // belongs to the last row (regression: the old SkyMap::probability_at
  // dropped it).
  const auto edge = grid.pixel_of({1.0, 0.0, 0.0});
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(grid.row_of(*edge),
            static_cast<std::size_t>(grid.n_rows()) - 1);
  // Clearly beyond the edge: outside.
  EXPECT_FALSE(grid.pixel_of({0.0, 0.0, -1.0}).has_value());
  const core::Vec3 below =
      core::from_spherical(core::deg_to_rad(90.1), 0.3);
  EXPECT_FALSE(grid.pixel_of(below).has_value());
}

TEST(SkyGrid, EdgeBehaviorConsistentAcrossResolutions) {
  for (const double res : {4.0, 1.0, 0.5}) {
    const SkyGrid grid(res, 90.0);
    for (const double az : {0.0, 1.0, 3.0, 6.2}) {
      const core::Vec3 dir{std::cos(az), std::sin(az), 0.0};
      const auto pixel = grid.pixel_of(dir);
      ASSERT_TRUE(pixel.has_value()) << "res " << res << " az " << az;
      EXPECT_EQ(grid.row_of(*pixel),
                static_cast<std::size_t>(grid.n_rows()) - 1);
    }
  }
}

TEST(SkyGrid, AzimuthWrapStaysInRow) {
  const SkyGrid grid(1.0, 90.0);
  // Azimuths that atan2 rounds to just below 0 (i.e. wrap to just
  // below 2*pi) must clamp into the row's last bin, not index out.
  const double polar = core::deg_to_rad(45.0);
  const core::Vec3 just_negative =
      core::from_spherical(polar, -1e-15);
  const core::Vec3 zero = core::from_spherical(polar, 0.0);
  const auto a = grid.pixel_of(just_negative);
  const auto b = grid.pixel_of(zero);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(grid.row_of(*a), grid.row_of(*b));
  // Either bin 0 (rounded through zero) or the row's last bin
  // (wrapped); both are valid pixels of the same row.
  const std::size_t row = grid.row_of(*a);
  const std::size_t az_bin = *a - grid.row_offset(row);
  EXPECT_LT(az_bin, static_cast<std::size_t>(grid.az_bins(row)));
}

TEST(SkyGrid, NonFiniteDirectionRejected) {
  const SkyGrid grid(1.0, 90.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(grid.pixel_of({nan, 0.0, 0.5}).has_value());
  EXPECT_FALSE(grid.pixel_of({0.0, nan, 0.5}).has_value());
  EXPECT_FALSE(grid.pixel_of({0.0, 0.0, nan}).has_value());
}

TEST(SkyGrid, SolidAnglesSumToCap) {
  const SkyGrid grid(1.0, 90.0);
  double total = 0.0;
  for (int row = 0; row < grid.n_rows(); ++row)
    total += grid.row_pixel_solid_angle_deg2(row) * grid.az_bins(row);
  // Hemisphere: 2*pi sr in deg^2.
  const double hemisphere =
      core::kTwoPi * std::pow(180.0 / core::kPi, 2.0);
  EXPECT_NEAR(total, hemisphere, 1e-6 * hemisphere);
}

TEST(SkyGridNormalize, FiniteValuesSumToOne) {
  const SkyGrid grid(2.0, 90.0);
  std::vector<double> log_post(grid.n_pixels(), 0.0);
  log_post[3] = 5.0;
  std::vector<double> prob;
  EXPECT_TRUE(normalize_log_posterior(grid, log_post, prob));
  double sum = 0.0;
  for (const double p : prob) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(prob[3], prob[4]);
}

TEST(SkyGridNormalize, AllNonFiniteFallsBackToUniform) {
  const SkyGrid grid(2.0, 90.0);
  // Regression for the zero-norm degenerate skymap: all mass
  // underflowed to -inf used to divide by zero into a NaN map.
  std::vector<double> log_post(
      grid.n_pixels(), -std::numeric_limits<double>::infinity());
  std::vector<double> prob;
  EXPECT_FALSE(normalize_log_posterior(grid, log_post, prob));
  double sum = 0.0;
  for (std::size_t i = 0; i < prob.size(); ++i) {
    ASSERT_TRUE(std::isfinite(prob[i])) << "pixel " << i;
    EXPECT_GT(prob[i], 0.0);
    sum += prob[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Uniform in *density*: probability proportional to solid angle.
  const double density0 = prob[0] / grid.pixel_solid_angle_deg2(0);
  const std::size_t last = prob.size() - 1;
  const double density1 = prob[last] / grid.pixel_solid_angle_deg2(last);
  EXPECT_NEAR(density0, density1, 1e-12);
}

TEST(SkyGridNormalize, IsolatedNonFiniteContributesZero) {
  const SkyGrid grid(2.0, 90.0);
  std::vector<double> log_post(grid.n_pixels(), 0.0);
  log_post[0] = std::numeric_limits<double>::quiet_NaN();
  log_post[1] = -std::numeric_limits<double>::infinity();
  std::vector<double> prob;
  EXPECT_TRUE(normalize_log_posterior(grid, log_post, prob));
  EXPECT_EQ(prob[0], 0.0);
  EXPECT_EQ(prob[1], 0.0);
  double sum = 0.0;
  for (const double p : prob) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SkyGrid, InvalidConfigRejected) {
  EXPECT_THROW(SkyGrid(0.0, 90.0), std::invalid_argument);
  EXPECT_THROW(SkyGrid(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(SkyGrid(1.0, 200.0), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::loc
