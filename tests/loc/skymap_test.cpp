#include "loc/skymap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>

#include "core/rng.hpp"
#include "core/units.hpp"

namespace adapt::loc {
namespace {

std::vector<recon::ComptonRing> rings_for(const core::Vec3& s, int n,
                                          double d_eta, core::Rng& rng,
                                          int n_background = 0) {
  std::vector<recon::ComptonRing> rings;
  for (int i = 0; i < n; ++i) {
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = r.axis.dot(s) + rng.normal(0.0, d_eta);
    if (r.eta < -1.0 || r.eta > 1.0) {
      --i;
      continue;
    }
    r.d_eta = d_eta;
    rings.push_back(r);
  }
  for (int i = 0; i < n_background; ++i) {
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = rng.uniform(-1.0, 1.0);
    r.d_eta = d_eta;
    rings.push_back(r);
  }
  return rings;
}

TEST(SkyMap, NormalizedToUnitMass) {
  core::Rng rng(1);
  const core::Vec3 s = core::from_spherical(0.5, 1.0);
  const auto rings = rings_for(s, 100, 0.05, rng);
  const SkyMap map = SkyMap::compute(rings);
  // probability_at sums are awkward to reach; verify via the CSV dump.
  const std::string path = "/tmp/adaptml_skymap_norm.csv";
  ASSERT_TRUE(map.write_csv(path));
  std::ifstream f(path);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "polar_deg,azimuth_deg,probability");
  double total = 0.0;
  double polar;
  double azimuth;
  double prob;
  char comma;
  while (f >> polar >> comma >> azimuth >> comma >> prob) total += prob;
  EXPECT_NEAR(total, 1.0, 1e-6);
  std::remove(path.c_str());
}

TEST(SkyMap, PeakNearTrueSource) {
  core::Rng rng(2);
  const core::Vec3 s = core::from_spherical(core::deg_to_rad(35.0),
                                            core::deg_to_rad(120.0));
  const auto rings = rings_for(s, 200, 0.05, rng);
  const SkyMap map = SkyMap::compute(rings);
  EXPECT_LT(core::rad_to_deg(core::angle_between(map.peak(), s)), 2.5);
}

TEST(SkyMap, PeakSurvivesBackgroundContamination) {
  core::Rng rng(3);
  const core::Vec3 s = core::from_spherical(core::deg_to_rad(20.0), 0.4);
  const auto rings = rings_for(s, 120, 0.05, rng, 300);
  const SkyMap map = SkyMap::compute(rings);
  EXPECT_LT(core::rad_to_deg(core::angle_between(map.peak(), s)), 3.0);
}

TEST(SkyMap, CredibleRegionShrinksWithMoreRings) {
  const core::Vec3 s = core::from_spherical(0.7, -0.5);
  core::Rng rng1(4);
  core::Rng rng2(4);
  const SkyMap sparse = SkyMap::compute(rings_for(s, 40, 0.05, rng1));
  const SkyMap dense = SkyMap::compute(rings_for(s, 400, 0.05, rng2));
  EXPECT_LT(dense.credible_region_area_deg2(0.9),
            sparse.credible_region_area_deg2(0.9));
}

TEST(SkyMap, CredibleRegionGrowsWithContent) {
  core::Rng rng(5);
  const core::Vec3 s = core::from_spherical(0.6, 2.0);
  const SkyMap map = SkyMap::compute(rings_for(s, 100, 0.08, rng));
  EXPECT_LT(map.credible_region_area_deg2(0.5),
            map.credible_region_area_deg2(0.9));
  EXPECT_GT(map.credible_radius_deg(0.9), 0.0);
  EXPECT_THROW(map.credible_region_area_deg2(0.0), std::invalid_argument);
}

TEST(SkyMap, CredibleRegionCoversTruthAtStatedRate) {
  // Property: over repeated realizations, the 90% region should
  // contain the truth about 90% of the time (within small-sample
  // slack).  Use the pixel-density ordering membership test.
  int covered = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    core::Rng rng(100 + t);
    const core::Vec3 s = core::from_spherical(0.5, 0.3 * t);
    const auto rings = rings_for(s, 150, 0.05, rng);
    const SkyMap map = SkyMap::compute(rings);
    // Membership: truth pixel's probability exceeds the density cut
    // that bounds the 90% region <=> the peak-ward set containing the
    // truth has mass < 0.9.  Approximate with the simpler check that
    // the truth lies within the credible radius of the peak.
    const double radius = map.credible_radius_deg(0.9);
    const double err = core::rad_to_deg(core::angle_between(map.peak(), s));
    if (err <= radius + map.config().resolution_deg) ++covered;
  }
  EXPECT_GE(covered, trials * 7 / 10);
}

TEST(SkyMap, ProbabilityAtFieldOfViewEdge) {
  core::Rng rng(6);
  const core::Vec3 s = core::from_spherical(0.4, 0.0);
  const SkyMap map = SkyMap::compute(rings_for(s, 80, 0.05, rng));
  // Below the horizon: exactly zero.
  EXPECT_DOUBLE_EQ(map.probability_at({0.0, 0.0, -1.0}), 0.0);
  // At the true source: positive.
  EXPECT_GT(map.probability_at(s), 0.0);
}

TEST(SkyMap, DegenerateLogPosteriorYieldsUniformNotNaN) {
  // Regression (zero-norm degenerate skymap): a posterior whose every
  // pixel underflowed to -inf used to normalize into a NaN map.  It
  // must instead come back flagged degenerate with the uniform
  // solid-angle posterior.
  const SkyGrid grid(2.0, 90.0);
  const std::vector<double> log_post(
      grid.n_pixels(), -std::numeric_limits<double>::infinity());
  const SkyMap map = SkyMap::from_log_posterior(
      grid, log_post, SkyMapConfig{2.0, 3.0, 90.0});
  EXPECT_TRUE(map.degenerate());
  const double p = map.probability_at(core::from_spherical(0.5, 1.0));
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_GT(p, 0.0);
  // Credible queries stay well-defined on the uniform fallback.
  EXPECT_TRUE(std::isfinite(map.credible_radius_deg(0.68)));
  EXPECT_GT(map.credible_region_area_deg2(0.68), 1e4);
}

TEST(SkyMap, HealthyMapIsNotDegenerate) {
  core::Rng rng(8);
  const auto rings = rings_for(core::from_spherical(0.5, 0.5), 60, 0.05,
                               rng);
  const SkyMap map = SkyMap::compute(rings);
  EXPECT_FALSE(map.degenerate());
}

TEST(SkyMap, CredibleContentDomainEnforced) {
  core::Rng rng(9);
  const SkyMap map =
      SkyMap::compute(rings_for({0.0, 0.0, 1.0}, 40, 0.05, rng));
  EXPECT_THROW(map.credible_region_area_deg2(1.0), std::invalid_argument);
  EXPECT_THROW(map.credible_region_area_deg2(-0.1), std::invalid_argument);
  EXPECT_THROW(
      map.credible_region_area_deg2(std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
  EXPECT_THROW(map.credible_radius_deg(0.0), std::invalid_argument);
}

TEST(SkyMap, UnusableRingsFilteredNotFatal) {
  // A zero- or NaN-width ring in the stream must be skipped, exactly
  // as the point-estimate localizers skip it — not abort the map.
  core::Rng rng(10);
  const core::Vec3 s = core::from_spherical(0.5, 1.0);
  auto rings = rings_for(s, 60, 0.05, rng);
  const SkyMap clean = SkyMap::compute(rings);
  recon::ComptonRing bad;
  bad.axis = {0.0, 0.0, 1.0};
  bad.eta = 0.2;
  bad.d_eta = 0.0;
  rings.push_back(bad);
  bad.d_eta = std::numeric_limits<double>::quiet_NaN();
  rings.push_back(bad);
  const SkyMap mixed = SkyMap::compute(rings);
  EXPECT_DOUBLE_EQ(mixed.probability_at(s), clean.probability_at(s));
  EXPECT_DOUBLE_EQ(mixed.credible_radius_deg(0.68),
                   clean.credible_radius_deg(0.68));
}

TEST(SkyMap, ProbabilityAtExactFieldOfViewEdge) {
  // The horizon vector sits exactly at polar == max_polar_deg; it
  // belongs to the last row (regression: it used to fall out of the
  // map and read back 0).
  core::Rng rng(11);
  const SkyMap map =
      SkyMap::compute(rings_for({1.0, 0.0, 0.0}, 80, 0.05, rng));
  EXPECT_GT(map.probability_at({1.0, 0.0, 0.0}), 0.0);
}

TEST(SkyMap, ResolutionControlsPixelCount) {
  core::Rng rng(7);
  const auto rings = rings_for({0, 0, 1}, 50, 0.05, rng);
  SkyMapConfig coarse;
  coarse.resolution_deg = 4.0;
  SkyMapConfig fine;
  fine.resolution_deg = 1.0;
  const SkyMap a = SkyMap::compute(rings, coarse);
  const SkyMap b = SkyMap::compute(rings, fine);
  EXPECT_GT(b.n_pixels(), 10 * a.n_pixels());
  EXPECT_THROW(SkyMap::compute(rings, SkyMapConfig{0.0, 3.0, 90.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace adapt::loc
