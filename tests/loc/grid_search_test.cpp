#include "loc/grid_search.hpp"

#include <gtest/gtest.h>

#include "core/units.hpp"

namespace adapt::loc {
namespace {

std::vector<recon::ComptonRing> rings_for(const core::Vec3& s, int n,
                                          double d_eta, core::Rng& rng,
                                          int n_background = 0) {
  std::vector<recon::ComptonRing> rings;
  for (int i = 0; i < n; ++i) {
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = r.axis.dot(s) + rng.normal(0.0, d_eta);
    if (r.eta < -1.0 || r.eta > 1.0) {
      --i;
      continue;
    }
    r.d_eta = d_eta;
    rings.push_back(r);
  }
  for (int i = 0; i < n_background; ++i) {
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = rng.uniform(-1.0, 1.0);
    r.d_eta = d_eta;
    rings.push_back(r);
  }
  return rings;
}

TEST(GridSearch, ExhaustiveScanFindsCleanSource) {
  core::Rng rng(1);
  const core::Vec3 s = core::from_spherical(core::deg_to_rad(42.0), 1.3);
  const auto rings = rings_for(s, 200, 0.05, rng);
  const auto result = grid_search_localize(rings);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)), 1.0);
}

TEST(GridSearch, SurvivesHeavyContamination) {
  core::Rng rng(2);
  const core::Vec3 s = core::from_spherical(core::deg_to_rad(15.0), -0.7);
  const auto rings = rings_for(s, 100, 0.05, rng, 300);
  const auto result = grid_search_localize(rings);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)), 2.5);
}

TEST(GridSearch, FastLocalizerAgreesWithReference) {
  // The production localizer must land on the reference's mode across
  // a spread of sources and contamination levels.
  Localizer fast;
  for (int trial = 0; trial < 8; ++trial) {
    core::Rng rng(100 + trial);
    const core::Vec3 s = core::from_spherical(
        core::deg_to_rad(10.0 + 9.0 * trial), 0.7 * trial);
    const auto rings = rings_for(s, 150, 0.05, rng, 150);
    core::Rng loc_rng(7);
    const auto quick = fast.localize(rings, loc_rng);
    const auto reference = grid_search_localize(rings);
    ASSERT_TRUE(quick.valid);
    ASSERT_TRUE(reference.valid);
    EXPECT_LT(core::rad_to_deg(core::angle_between(quick.direction,
                                                   reference.direction)),
              2.0)
        << "trial " << trial;
  }
}

TEST(GridSearch, DegenerateInputsInvalid) {
  EXPECT_FALSE(grid_search_localize({}).valid);
  core::Rng rng(3);
  const auto one = rings_for({0, 0, 1}, 1, 0.05, rng);
  EXPECT_FALSE(grid_search_localize(one).valid);
}

TEST(GridSearch, DegenerateFineRadiusStillLocalizes) {
  // A fine pitch coarser than the fine radius collapses the cap scan
  // to a single radial step; the scan must still return the best of
  // those candidates instead of looping forever or bailing out.
  core::Rng rng(6);
  const core::Vec3 s = core::from_spherical(core::deg_to_rad(30.0), 0.4);
  const auto rings = rings_for(s, 200, 0.05, rng);
  GridSearchConfig cfg;
  cfg.fine_radius_deg = 0.5;
  cfg.fine_resolution_deg = 2.0;  // Pitch > radius.
  const auto result = grid_search_localize(rings, cfg);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)), 3.0);
}

TEST(GridSearch, ValidatesConfig) {
  core::Rng rng(4);
  const auto rings = rings_for({0, 0, 1}, 10, 0.05, rng);
  GridSearchConfig cfg;
  cfg.coarse_resolution_deg = 0.0;
  EXPECT_THROW(grid_search_localize(rings, cfg), std::invalid_argument);
}

TEST(GridSearch, HorizonConstraintRespected) {
  // A source just above the horizon must not be pushed below it.
  core::Rng rng(5);
  const core::Vec3 s = core::from_spherical(core::deg_to_rad(85.0), 0.0);
  const auto rings = rings_for(s, 150, 0.05, rng);
  const auto result = grid_search_localize(rings);
  ASSERT_TRUE(result.valid);
  EXPECT_GE(result.direction.z, -0.05);
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)), 2.0);
}

}  // namespace
}  // namespace adapt::loc
