/// Parameterized end-to-end properties of the Fig. 6 ML localization
/// loop with oracle-grade synthetic networks: across source positions
/// and contamination levels, ML-in-the-loop must never lose to the
/// plain pipeline by more than noise, and must win under heavy
/// contamination.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/units.hpp"
#include "nn/linear.hpp"
#include "pipeline/ml_localizer.hpp"

namespace adapt::pipeline {
namespace {

/// Synthetic ring population: signal rings tagged with e_total = 1.0,
/// background rings with e_total = 0.511 — the handle the oracle
/// classifier keys on (mirrors the annihilation-line separation in the
/// real background).
std::vector<recon::ComptonRing> population(const core::Vec3& s, int n_signal,
                                           int n_background, double d_eta,
                                           core::Rng& rng) {
  std::vector<recon::ComptonRing> rings;
  for (int i = 0; i < n_signal + n_background; ++i) {
    const bool is_signal = i < n_signal;
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = is_signal ? r.axis.dot(s) + rng.normal(0.0, d_eta)
                      : rng.uniform(-1.0, 1.0);
    if (is_signal && (r.eta < -1.0 || r.eta > 1.0)) {
      --i;
      continue;
    }
    r.d_eta = d_eta;
    r.e_total = is_signal ? 1.0 : 0.511;
    r.hit1 = recon::RingHit{{0, 0, -0.5}, 0.4, {0.1, 0.1, 0.3}, 0.01};
    r.hit2 = recon::RingHit{{3, 0, -10.5}, 0.6, {0.1, 0.1, 0.3}, 0.01};
    r.origin = is_signal ? detector::Origin::kGrb
                         : detector::Origin::kBackground;
    rings.push_back(r);
  }
  return rings;
}

BackgroundNet oracle_classifier() {
  core::Rng rng(42);
  nn::Sequential model;
  auto lin = std::make_unique<nn::Linear>(13, 1, rng);
  lin->weight().value.zero();
  lin->weight().value(0, 0) = -40.0f;  // e_total 0.511 -> logit +9.6.
  lin->bias().value(0, 0) = 30.0f;
  model.add(std::move(lin));
  return BackgroundNet(std::move(model), {}, {}, true);
}

struct Scenario {
  double polar_deg;
  double azimuth_deg;
  int n_signal;
  int n_background;
};

class MlLoopSweep : public ::testing::TestWithParam<Scenario> {};

TEST_P(MlLoopSweep, MlAtLeastMatchesPlainPipeline) {
  const Scenario sc = GetParam();
  const core::Vec3 s = core::from_spherical(
      core::deg_to_rad(sc.polar_deg), core::deg_to_rad(sc.azimuth_deg));
  core::Rng rng(static_cast<std::uint64_t>(sc.polar_deg * 131 +
                                           sc.n_background));
  const auto rings =
      population(s, sc.n_signal, sc.n_background, 0.05, rng);

  BackgroundNet oracle = oracle_classifier();
  MlLocalizer localizer;
  core::Rng rng_plain(7);
  core::Rng rng_ml(7);
  const auto plain = localizer.run(rings, nullptr, nullptr, rng_plain);
  const auto ml = localizer.run(rings, &oracle, nullptr, rng_ml);
  ASSERT_TRUE(ml.valid);

  const double ml_err =
      core::rad_to_deg(core::angle_between(ml.direction, s));
  const double plain_err =
      plain.valid ? core::rad_to_deg(core::angle_between(plain.direction, s))
                  : 180.0;
  // ML with an oracle classifier must localize well everywhere...
  EXPECT_LT(ml_err, 4.0);
  // ...and never lose to the plain pipeline by more than noise.
  EXPECT_LT(ml_err, plain_err + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, MlLoopSweep,
    ::testing::Values(Scenario{0.0, 0.0, 120, 120},
                      Scenario{25.0, 60.0, 120, 240},
                      Scenario{45.0, -120.0, 80, 320},
                      Scenario{65.0, 10.0, 60, 240},
                      Scenario{80.0, 170.0, 120, 120},
                      Scenario{30.0, 0.0, 40, 400}));

class DetaWidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(DetaWidthSweep, ConstantDetaOverrideKeepsConvergence) {
  // Whatever (sane) width the dEta net assigns, the final refinement
  // must stay on the source mode: reweighting must not break the
  // robust fit.
  const double width = GetParam();
  const core::Vec3 s = core::from_spherical(0.5, 0.3);
  core::Rng rng(99);
  const auto rings = population(s, 150, 150, 0.05, rng);

  core::Rng mrng(5);
  nn::Sequential model;
  auto lin = std::make_unique<nn::Linear>(13, 1, mrng);
  lin->weight().value.zero();
  lin->bias().value(0, 0) = std::log(static_cast<float>(width));
  model.add(std::move(lin));
  DEtaNet deta(std::move(model), {}, true);

  MlLocalizer localizer;
  core::Rng rng_run(11);
  const auto result = localizer.run(rings, nullptr, &deta, rng_run);
  ASSERT_TRUE(result.valid);
  // Precision scales with the assigned width (the fit legitimately
  // loosens when every ring claims to be thick); the mode must hold.
  const double bound = std::max(
      3.0, core::rad_to_deg(8.0 * width / std::sqrt(150.0)));
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)),
            bound)
      << "d_eta override " << width;
}

INSTANTIATE_TEST_SUITE_P(Widths, DetaWidthSweep,
                         ::testing::Values(0.01, 0.05, 0.2, 1.0));

}  // namespace
}  // namespace adapt::pipeline
