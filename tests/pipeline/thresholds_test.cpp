#include "pipeline/thresholds.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace adapt::pipeline {
namespace {

TEST(Thresholds, BinningCoversFieldOfView) {
  EXPECT_EQ(PolarThresholds::bin_of(0.0), 0);
  EXPECT_EQ(PolarThresholds::bin_of(9.99), 0);
  EXPECT_EQ(PolarThresholds::bin_of(10.0), 1);
  EXPECT_EQ(PolarThresholds::bin_of(45.0), 4);
  EXPECT_EQ(PolarThresholds::bin_of(89.9), 8);
  // Clamped outside [0, 90).
  EXPECT_EQ(PolarThresholds::bin_of(-5.0), 0);
  EXPECT_EQ(PolarThresholds::bin_of(120.0), 8);
}

TEST(Thresholds, DefaultIsNeutral) {
  const PolarThresholds t;
  for (double angle : {5.0, 35.0, 85.0})
    EXPECT_DOUBLE_EQ(t.logit_threshold(angle), 0.0);
}

TEST(Thresholds, SetAndGetPerBin) {
  PolarThresholds t;
  t.set_logit_threshold(3, -1.5);
  EXPECT_DOUBLE_EQ(t.logit_threshold(35.0), -1.5);
  EXPECT_DOUBLE_EQ(t.logit_threshold(25.0), 0.0);
  EXPECT_THROW(t.set_logit_threshold(9, 0.0), std::invalid_argument);
  EXPECT_THROW(t.set_logit_threshold(-1, 0.0), std::invalid_argument);
}

TEST(Thresholds, FitSeparatesCleanBins) {
  // Bin at 15 deg: GRB logits near -2, background near +2 -> any
  // threshold in between is optimal; check classification is perfect.
  std::vector<float> logits;
  std::vector<float> labels;
  std::vector<double> polars;
  core::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const bool bkg = i % 2 == 0;
    logits.push_back(bkg ? 2.0f + static_cast<float>(rng.normal(0, 0.2))
                         : -2.0f + static_cast<float>(rng.normal(0, 0.2)));
    labels.push_back(bkg ? 1.0f : 0.0f);
    polars.push_back(15.0);
  }
  PolarThresholds t;
  t.fit(logits, labels, polars);
  const double thr = t.logit_threshold(15.0);
  EXPECT_GT(thr, -1.0);
  EXPECT_LT(thr, 1.0);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const bool flagged = logits[i] >= thr;
    if (flagged == (labels[i] > 0.5f)) ++correct;
  }
  EXPECT_EQ(correct, logits.size());
}

TEST(Thresholds, FitIsPerBin) {
  // Two bins with opposite logit offsets need different thresholds.
  std::vector<float> logits;
  std::vector<float> labels;
  std::vector<double> polars;
  core::Rng rng(2);
  for (int i = 0; i < 400; ++i) {
    const bool bkg = i % 2 == 0;
    const bool low_bin = i < 200;
    const float center = low_bin ? 5.0f : -5.0f;
    logits.push_back(center + (bkg ? 1.0f : -1.0f) +
                     static_cast<float>(rng.normal(0, 0.1)));
    labels.push_back(bkg ? 1.0f : 0.0f);
    polars.push_back(low_bin ? 5.0 : 75.0);
  }
  PolarThresholds t;
  t.fit(logits, labels, polars);
  EXPECT_NEAR(t.logit_threshold(5.0), 5.0, 0.5);
  EXPECT_NEAR(t.logit_threshold(75.0), -5.0, 0.5);
}

TEST(Thresholds, EmptyBinKeepsNeutralDefault) {
  PolarThresholds t;
  t.fit({1.0f}, {1.0f}, {5.0});
  EXPECT_DOUBLE_EQ(t.logit_threshold(85.0), 0.0);
}

TEST(Thresholds, AllOneClassPushesThresholdOutward) {
  // Only GRB samples: the best threshold flags nothing as background.
  std::vector<float> logits{0.0f, 1.0f, 2.0f};
  std::vector<float> labels{0.0f, 0.0f, 0.0f};
  std::vector<double> polars{45.0, 45.0, 45.0};
  PolarThresholds t;
  t.fit(logits, labels, polars);
  EXPECT_GT(t.logit_threshold(45.0), 2.0);
}

TEST(Thresholds, MetadataRoundTrip) {
  PolarThresholds t;
  for (int b = 0; b < PolarThresholds::kNumBins; ++b)
    t.set_logit_threshold(b, 0.1 * b - 0.3);
  const auto meta = t.to_metadata();
  EXPECT_EQ(meta.size(), static_cast<std::size_t>(PolarThresholds::kNumBins));
  const PolarThresholds restored = PolarThresholds::from_metadata(meta);
  for (double angle = 5.0; angle < 90.0; angle += 10.0)
    EXPECT_DOUBLE_EQ(restored.logit_threshold(angle),
                     t.logit_threshold(angle));
}

TEST(Thresholds, FitValidatesSizes) {
  PolarThresholds t;
  EXPECT_THROW(t.fit({1.0f}, {1.0f, 0.0f}, {5.0}), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::pipeline
