#include "pipeline/ml_localizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/units.hpp"
#include "nn/linear.hpp"

namespace adapt::pipeline {
namespace {

nn::Sequential constant_logit_model(std::size_t input_dim, float bias) {
  core::Rng rng(1);
  nn::Sequential model;
  auto lin = std::make_unique<nn::Linear>(input_dim, 1, rng);
  lin->weight().value.zero();
  lin->bias().value(0, 0) = bias;
  model.add(std::move(lin));
  return model;
}

/// Signal rings around a source plus uniform background rings, with
/// the truth tags the oracle classifier below keys on.
std::vector<recon::ComptonRing> make_rings(const core::Vec3& s,
                                           int n_signal, int n_background,
                                           std::uint64_t seed,
                                           double d_eta = 0.05) {
  core::Rng rng(seed);
  std::vector<recon::ComptonRing> rings;
  for (int i = 0; i < n_signal; ++i) {
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = r.axis.dot(s) + rng.normal(0.0, d_eta);
    if (r.eta < -1.0 || r.eta > 1.0) {
      --i;
      continue;
    }
    r.d_eta = d_eta;
    r.e_total = 1.0;
    r.hit1 = recon::RingHit{{0, 0, -0.5}, 0.4, {0.1, 0.1, 0.3}, 0.01};
    r.hit2 = recon::RingHit{{3, 0, -10.5}, 0.6, {0.1, 0.1, 0.3}, 0.01};
    r.origin = detector::Origin::kGrb;
    rings.push_back(r);
  }
  for (int i = 0; i < n_background; ++i) {
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = rng.uniform(-1.0, 1.0);
    r.d_eta = d_eta;
    r.e_total = 0.511;  // The tag the oracle net uses (see below).
    r.hit1 = recon::RingHit{{0, 0, -0.5}, 0.2, {0.1, 0.1, 0.3}, 0.01};
    r.hit2 = recon::RingHit{{3, 0, -10.5}, 0.3, {0.1, 0.1, 0.3}, 0.01};
    r.origin = detector::Origin::kBackground;
    rings.push_back(r);
  }
  return rings;
}

/// An "oracle" classifier exploiting the synthetic rings' energy tag:
/// logit = 20 * (feature0 < 0.75 ? +1 : -1), i.e. the 0.511 MeV rings
/// are flagged.  Implemented as Linear on feature 0 with bias.
BackgroundNet oracle_net() {
  core::Rng rng(2);
  nn::Sequential model;
  auto lin = std::make_unique<nn::Linear>(13, 1, rng);
  lin->weight().value.zero();
  lin->weight().value(0, 0) = -40.0f;  // Low energy -> high logit.
  lin->bias().value(0, 0) = 30.0f;     // 0.511 -> +9.6; 1.0 -> -10.
  model.add(std::move(lin));
  return BackgroundNet(std::move(model), {}, {}, true);
}

TEST(MlLocalizer, NullNetsReproduceBaseline) {
  const core::Vec3 s = core::from_spherical(0.4, 0.7);
  const auto rings = make_rings(s, 150, 0, 3);
  MlLocalizer ml;
  core::Rng rng(4);
  const auto result = ml.run(rings, nullptr, nullptr, rng);
  ASSERT_TRUE(result.valid);
  EXPECT_EQ(result.background_iterations, 0);
  EXPECT_EQ(result.rings_kept, rings.size());
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)), 1.5);
}

TEST(MlLocalizer, OracleRejectionImprovesContaminatedLocalization) {
  const core::Vec3 s = core::from_spherical(0.6, -1.2);
  // Heavy contamination: 40 signal vs 400 background.
  const auto rings = make_rings(s, 40, 400, 5);
  MlLocalizer ml;
  BackgroundNet oracle = oracle_net();

  int better = 0;
  for (int trial = 0; trial < 5; ++trial) {
    core::Rng rng_a(100 + trial);
    core::Rng rng_b(100 + trial);
    const auto with_ml = ml.run(rings, &oracle, nullptr, rng_a);
    const auto without = ml.run(rings, nullptr, nullptr, rng_b);
    ASSERT_TRUE(with_ml.valid);
    const double err_ml =
        core::rad_to_deg(core::angle_between(with_ml.direction, s));
    const double err_plain =
        without.valid
            ? core::rad_to_deg(core::angle_between(without.direction, s))
            : 180.0;
    if (err_ml <= err_plain + 0.5) ++better;
    EXPECT_LT(err_ml, 5.0) << "trial " << trial;
  }
  EXPECT_GE(better, 4);
}

TEST(MlLocalizer, OracleRejectionRemovesBackgroundRings) {
  const core::Vec3 s = core::from_spherical(0.3, 0.0);
  const auto rings = make_rings(s, 100, 250, 6);
  MlLocalizer ml;
  BackgroundNet oracle = oracle_net();
  core::Rng rng(7);
  const auto result = ml.run(rings, &oracle, nullptr, rng);
  ASSERT_TRUE(result.valid);
  EXPECT_GT(result.background_iterations, 0);
  EXPECT_NEAR(static_cast<double>(result.rings_kept), 100.0, 5.0);
}

TEST(MlLocalizer, AllFlaggedFallsBackToFullSet) {
  // A net that flags everything must not leave localization with an
  // empty ring set.
  const core::Vec3 s{0, 0, 1};
  const auto rings = make_rings(s, 80, 0, 8);
  BackgroundNet always_bkg(constant_logit_model(13, 50.0f), {}, {}, true);
  MlLocalizer ml;
  core::Rng rng(9);
  const auto result = ml.run(rings, &always_bkg, nullptr, rng);
  ASSERT_TRUE(result.valid);
  EXPECT_EQ(result.rings_kept, rings.size());
}

TEST(MlLocalizer, DetaNetOverridesRingWidths) {
  // A dEta net that predicts a constant 0.2: the final refinement sees
  // uniformly reweighted rings; the pipeline still localizes.
  const core::Vec3 s = core::from_spherical(0.5, 0.5);
  const auto rings = make_rings(s, 150, 0, 10);
  DEtaNet deta(constant_logit_model(13, std::log(0.2f)), {}, true);
  MlLocalizer ml;
  core::Rng rng(11);
  const auto result = ml.run(rings, nullptr, &deta, rng);
  ASSERT_TRUE(result.valid);
  EXPECT_LT(core::rad_to_deg(core::angle_between(result.direction, s)), 2.0);
}

TEST(MlLocalizer, TimingsPopulated) {
  const core::Vec3 s{0, 0, 1};
  const auto rings = make_rings(s, 120, 120, 12);
  BackgroundNet oracle = oracle_net();
  DEtaNet deta(constant_logit_model(13, std::log(0.05f)), {}, true);
  MlLocalizer ml;
  core::Rng rng(13);
  StageTimings timings;
  const auto result = ml.run(rings, &oracle, &deta, rng, &timings);
  ASSERT_TRUE(result.valid);
  EXPECT_GT(timings.total_ms, 0.0);
  EXPECT_GT(timings.approx_refine_ms, 0.0);
  EXPECT_GT(timings.background_inference_ms, 0.0);
  EXPECT_GT(timings.deta_inference_ms, 0.0);
  EXPECT_GE(timings.setup_ms, 0.0);
  // Stage sum cannot exceed the measured total.
  EXPECT_LE(timings.setup_ms + timings.approx_refine_ms +
                timings.background_inference_ms + timings.deta_inference_ms,
            timings.total_ms * 1.05 + 0.5);
}

TEST(MlLocalizer, IterationCapRespected) {
  const core::Vec3 s{0, 0, 1};
  const auto rings = make_rings(s, 60, 200, 14);
  MlLocalizerConfig cfg;
  cfg.max_background_iterations = 2;
  MlLocalizer ml(cfg);
  BackgroundNet oracle = oracle_net();
  core::Rng rng(15);
  const auto result = ml.run(rings, &oracle, nullptr, rng);
  EXPECT_LE(result.background_iterations, 2);
}

TEST(MlLocalizer, EmptyInputHandled) {
  MlLocalizer ml;
  core::Rng rng(16);
  const auto result = ml.run({}, nullptr, nullptr, rng);
  EXPECT_FALSE(result.valid);
  EXPECT_EQ(result.rings_in, 0u);
}

TEST(MlLocalizer, RejectsBadConfig) {
  MlLocalizerConfig cfg;
  cfg.max_background_iterations = -1;
  EXPECT_THROW(MlLocalizer{cfg}, std::invalid_argument);
  cfg = MlLocalizerConfig{};
  cfg.convergence_angle_rad = 0.0;
  EXPECT_THROW(MlLocalizer{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace adapt::pipeline
