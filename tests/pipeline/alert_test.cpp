#include "pipeline/alert.hpp"

#include <gtest/gtest.h>

#include "core/units.hpp"
#include "sim/exposure.hpp"

namespace adapt::pipeline {
namespace {

class AlertTest : public ::testing::Test {
 protected:
  AlertTest()
      : geometry_(detector::GeometryConfig{}),
        simulator_(geometry_, detector::Material::csi()) {}

  /// A calibrated pipeline (background rate learned from a quiet
  /// window), ready to process burst windows.
  AlertPipeline calibrated_pipeline(core::Rng& rng,
                                    const AlertConfig& config = {}) {
    AlertPipeline pipeline(config);
    const auto quiet =
        simulator_.simulate_background_only(sim::BackgroundConfig{}, rng);
    pipeline.calibrate_background(quiet.events, 1.0);
    return pipeline;
  }

  detector::Geometry geometry_;
  sim::ExposureSimulator simulator_;
};

TEST_F(AlertTest, QuietWindowIssuesNoAlert) {
  core::Rng rng(1);
  AlertPipeline pipeline = calibrated_pipeline(rng);
  const auto quiet =
      simulator_.simulate_background_only(sim::BackgroundConfig{}, rng);
  const Alert alert =
      pipeline.process_window(quiet.events, 1.0, nullptr, nullptr, rng);
  EXPECT_FALSE(alert.issued);
  EXPECT_FALSE(alert.detection.triggered);
  EXPECT_FALSE(alert.sky_map.has_value());
}

TEST_F(AlertTest, BrightBurstProducesAccurateAlert) {
  core::Rng rng(2);
  AlertPipeline pipeline = calibrated_pipeline(rng);
  sim::GrbConfig grb;
  grb.fluence = 1.0;
  grb.polar_deg = 30.0;
  const auto burst = simulator_.simulate(grb, sim::BackgroundConfig{}, rng);

  const Alert alert =
      pipeline.process_window(burst.events, 1.0, nullptr, nullptr, rng);
  ASSERT_TRUE(alert.issued);
  EXPECT_GT(alert.detection.significance_sigma, 10.0);
  EXPECT_GT(alert.rings_total, 50u);
  ASSERT_TRUE(alert.sky_map.has_value());
  EXPECT_GT(alert.credible_radius_deg, 0.0);
  EXPECT_LT(alert.credible_radius_deg, 10.0);

  const double err = core::rad_to_deg(core::angle_between(
      alert.direction, burst.true_source_direction));
  EXPECT_LT(err, 5.0);
  EXPECT_NEAR(alert.polar_deg, 30.0, 5.0);
}

TEST_F(AlertTest, SelectionWindowCoversThePulse) {
  core::Rng rng(3);
  AlertPipeline pipeline = calibrated_pipeline(rng);
  sim::GrbConfig grb;  // Pulse onset 0.2 s, decay 0.15 s.
  const auto burst = simulator_.simulate(grb, sim::BackgroundConfig{}, rng);
  const Alert alert =
      pipeline.process_window(burst.events, 1.0, nullptr, nullptr, rng);
  ASSERT_TRUE(alert.issued);
  // The trigger window must overlap the simulated pulse, and the
  // selection must include a meaningful fraction of the window.
  EXPECT_LT(alert.detection.t_start, 0.6);
  EXPECT_GT(alert.detection.t_end, 0.2);
  EXPECT_GT(alert.events_selected, 1000u);
  EXPECT_LT(alert.events_selected, burst.events.size());
}

TEST_F(AlertTest, MinRingsGateWithholdsAlert) {
  core::Rng rng(4);
  AlertConfig config;
  config.min_rings = 100000;  // Impossible bar.
  AlertPipeline pipeline = calibrated_pipeline(rng, config);
  const auto burst =
      simulator_.simulate(sim::GrbConfig{}, sim::BackgroundConfig{}, rng);
  const Alert alert =
      pipeline.process_window(burst.events, 1.0, nullptr, nullptr, rng);
  EXPECT_TRUE(alert.detection.triggered);
  EXPECT_FALSE(alert.issued);
}

TEST_F(AlertTest, CalibrationUpdatesRate) {
  AlertPipeline pipeline{AlertConfig{}};
  const double before = pipeline.background_rate_hz();
  core::Rng rng(5);
  const auto quiet =
      simulator_.simulate_background_only(sim::BackgroundConfig{}, rng);
  pipeline.calibrate_background(quiet.events, 1.0);
  EXPECT_NE(pipeline.background_rate_hz(), before);
  EXPECT_GT(pipeline.background_rate_hz(), 1000.0);
}

TEST_F(AlertTest, RejectsBadConfig) {
  AlertConfig config;
  config.credible_content = 1.0;
  EXPECT_THROW(AlertPipeline{config}, std::invalid_argument);
  config = AlertConfig{};
  config.pre_margin_s = -1.0;
  EXPECT_THROW(AlertPipeline{config}, std::invalid_argument);
}

}  // namespace
}  // namespace adapt::pipeline
