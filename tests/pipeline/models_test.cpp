#include "pipeline/models.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "nn/activations.hpp"
#include "nn/linear.hpp"

namespace adapt::pipeline {
namespace {

/// A Linear(d -> 1) stack with all-zero weights and a fixed bias: a
/// constant-logit model, ideal for exercising wrapper mechanics.
nn::Sequential constant_logit_model(std::size_t input_dim, float bias) {
  core::Rng rng(1);
  nn::Sequential model;
  auto lin = std::make_unique<nn::Linear>(input_dim, 1, rng);
  lin->weight().value.zero();
  lin->bias().value(0, 0) = bias;
  model.add(std::move(lin));
  return model;
}

recon::ComptonRing some_ring(detector::Origin origin) {
  recon::ComptonRing r;
  r.axis = {0.0, 0.0, 1.0};
  r.eta = 0.3;
  r.d_eta = 0.08;
  r.e_total = 0.9;
  r.sigma_e_total = 0.02;
  r.hit1 = recon::RingHit{{0.5, 0.5, -0.5}, 0.4, {0.1, 0.1, 0.3}, 0.01};
  r.hit2 = recon::RingHit{{2.0, 1.0, -10.5}, 0.5, {0.1, 0.1, 0.3}, 0.012};
  r.origin = origin;
  return r;
}

TEST(BackgroundNetWrapper, ConstantLogitClassifiesUniformly) {
  BackgroundNet net(constant_logit_model(13, 3.0f), {}, {}, true);
  const std::vector<recon::ComptonRing> rings{
      some_ring(detector::Origin::kGrb),
      some_ring(detector::Origin::kBackground)};
  const auto logits = net.logits(rings, 20.0);
  ASSERT_EQ(logits.size(), 2u);
  EXPECT_FLOAT_EQ(logits[0], 3.0f);
  // Threshold 0 (default): everything flagged background.
  const auto cls = net.classify(rings, 20.0);
  EXPECT_EQ(cls[0], 1);
  EXPECT_EQ(cls[1], 1);
  // Probabilities are the sigmoid of the logit.
  const auto probs = net.probabilities(rings, 20.0);
  EXPECT_NEAR(probs[0], 1.0 / (1.0 + std::exp(-3.0)), 1e-6);
}

TEST(BackgroundNetWrapper, ThresholdShiftsDecision) {
  PolarThresholds thresholds;
  thresholds.set_logit_threshold(2, 5.0);  // Bin for 25 degrees.
  BackgroundNet net(constant_logit_model(13, 3.0f), {}, thresholds, true);
  const std::vector<recon::ComptonRing> rings{
      some_ring(detector::Origin::kGrb)};
  // At 25 deg, threshold 5 > logit 3: kept as GRB.
  EXPECT_EQ(net.classify(rings, 25.0)[0], 0);
  // At 45 deg, neutral threshold: flagged.
  EXPECT_EQ(net.classify(rings, 45.0)[0], 1);
}

TEST(BackgroundNetWrapper, PolarFlagControlsFeatureWidth) {
  // A 12-input model must be driven without the polar column.
  BackgroundNet net(constant_logit_model(12, -1.0f), {}, {}, false);
  const std::vector<recon::ComptonRing> rings{
      some_ring(detector::Origin::kGrb)};
  EXPECT_NO_THROW(net.logits(rings, 0.0));
  EXPECT_FALSE(net.uses_polar());
}

TEST(BackgroundNetWrapper, EmptyInputYieldsEmptyOutput) {
  BackgroundNet net(constant_logit_model(13, 0.0f), {}, {}, true);
  EXPECT_TRUE(net.logits({}, 0.0).empty());
  EXPECT_TRUE(net.classify({}, 0.0).empty());
}

TEST(BackgroundNetWrapper, StandardizerAppliedBeforeModel) {
  // Weight 1 on feature 0 (total energy), zero bias: logit equals the
  // standardized energy.
  core::Rng rng(2);
  nn::Sequential model;
  auto lin = std::make_unique<nn::Linear>(13, 1, rng);
  lin->weight().value.zero();
  lin->weight().value(0, 0) = 1.0f;
  lin->bias().value(0, 0) = 0.0f;
  model.add(std::move(lin));

  nn::Standardizer std_;
  std::vector<float> mean(13, 0.0f);
  std::vector<float> inv_std(13, 1.0f);
  mean[0] = 0.9f;   // Equals the test ring's total energy.
  inv_std[0] = 2.0f;
  std_.set(mean, inv_std);

  BackgroundNet net(std::move(model), std_, {}, true);
  const std::vector<recon::ComptonRing> rings{
      some_ring(detector::Origin::kGrb)};
  const auto logits = net.logits(rings, 0.0);
  EXPECT_NEAR(logits[0], 0.0f, 1e-6);  // (0.9 - 0.9) * 2.
}

TEST(BackgroundNetWrapper, SaveLoadRoundTrip) {
  const std::string path = "/tmp/adaptml_bkgnet_test.adnn";
  PolarThresholds thresholds;
  thresholds.set_logit_threshold(0, -0.7);
  BackgroundNet net(constant_logit_model(13, 1.5f), {}, thresholds, true);
  ASSERT_TRUE(net.save(path));

  auto loaded = BackgroundNet::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->uses_polar());
  EXPECT_DOUBLE_EQ(loaded->thresholds().logit_threshold(5.0), -0.7);
  const std::vector<recon::ComptonRing> rings{
      some_ring(detector::Origin::kGrb)};
  EXPECT_FLOAT_EQ(loaded->logits(rings, 0.0)[0], 1.5f);
  std::remove(path.c_str());
}

TEST(BackgroundNetWrapper, LoadMissingFileFails) {
  EXPECT_FALSE(BackgroundNet::load("/tmp/missing_net.adnn").has_value());
}

TEST(DEtaNetWrapper, PredictsExpOfOutput) {
  // Constant output ln(0.05) -> d_eta 0.05 for every ring.
  DEtaNet net(constant_logit_model(13, std::log(0.05f)), {}, true);
  const std::vector<recon::ComptonRing> rings{
      some_ring(detector::Origin::kGrb),
      some_ring(detector::Origin::kBackground)};
  const auto d = net.predict(rings, 30.0);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_NEAR(d[0], 0.05, 1e-6);
  EXPECT_NEAR(d[1], 0.05, 1e-6);
}

TEST(DEtaNetWrapper, OutputClampedToBounds) {
  DEtaNet huge(constant_logit_model(13, 10.0f), {}, true);
  DEtaNet tiny(constant_logit_model(13, -30.0f), {}, true);
  const std::vector<recon::ComptonRing> rings{
      some_ring(detector::Origin::kGrb)};
  EXPECT_DOUBLE_EQ(huge.predict(rings, 0.0, 1e-4, 2.0)[0], 2.0);
  EXPECT_DOUBLE_EQ(tiny.predict(rings, 0.0, 1e-4, 2.0)[0], 1e-4);
  EXPECT_THROW(huge.predict(rings, 0.0, 0.0, 2.0), std::invalid_argument);
}

TEST(DEtaNetWrapper, SaveLoadRoundTrip) {
  const std::string path = "/tmp/adaptml_detanet_test.adnn";
  DEtaNet net(constant_logit_model(13, std::log(0.1f)), {}, true);
  ASSERT_TRUE(net.save(path));
  auto loaded = DEtaNet::load(path);
  ASSERT_TRUE(loaded.has_value());
  const std::vector<recon::ComptonRing> rings{
      some_ring(detector::Origin::kGrb)};
  EXPECT_NEAR(loaded->predict(rings, 0.0)[0], 0.1, 1e-6);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adapt::pipeline
