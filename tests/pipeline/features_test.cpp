#include "pipeline/features.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adapt::pipeline {
namespace {

recon::ComptonRing sample_ring() {
  recon::ComptonRing r;
  r.axis = {0.0, 0.0, 1.0};
  r.eta = 0.4;
  r.d_eta = 0.05;
  r.e_total = 1.25;
  r.sigma_e_total = 0.03;
  r.hit1 = recon::RingHit{{1.0, 2.0, -0.5}, 0.5, {0.1, 0.1, 0.3}, 0.012};
  r.hit2 = recon::RingHit{{3.0, -1.0, -10.5}, 0.75, {0.1, 0.1, 0.3}, 0.015};
  r.n_hits = 2;
  r.origin = detector::Origin::kGrb;
  r.true_direction = {0.0, 0.0, -1.0};
  return r;
}

TEST(Features, LayoutMatchesPaperDescription) {
  // Twelve base features: total energy; x, y, z, E of the first two
  // hits; and the three energy uncertainties.
  const auto ring = sample_ring();
  float row[kBaseFeatureCount];
  write_base_features(ring, row);
  EXPECT_FLOAT_EQ(row[0], 1.25f);   // Total energy.
  EXPECT_FLOAT_EQ(row[1], 1.0f);    // Hit 1 x.
  EXPECT_FLOAT_EQ(row[2], 2.0f);    // Hit 1 y.
  EXPECT_FLOAT_EQ(row[3], -0.5f);   // Hit 1 z.
  EXPECT_FLOAT_EQ(row[4], 0.5f);    // Hit 1 energy.
  EXPECT_FLOAT_EQ(row[5], 3.0f);    // Hit 2 x.
  EXPECT_FLOAT_EQ(row[6], -1.0f);   // Hit 2 y.
  EXPECT_FLOAT_EQ(row[7], -10.5f);  // Hit 2 z.
  EXPECT_FLOAT_EQ(row[8], 0.75f);   // Hit 2 energy.
  EXPECT_FLOAT_EQ(row[9], 0.03f);   // Sigma total.
  EXPECT_FLOAT_EQ(row[10], 0.012f); // Sigma hit 1.
  EXPECT_FLOAT_EQ(row[11], 0.015f); // Sigma hit 2.
}

TEST(Features, MatrixWithPolarHasThirteenColumns) {
  const std::vector<recon::ComptonRing> rings{sample_ring(), sample_ring()};
  const nn::Tensor x = feature_matrix(rings, true, 35.0);
  EXPECT_EQ(x.rows(), 2u);
  EXPECT_EQ(x.cols(), kFeatureCount);
  EXPECT_FLOAT_EQ(x(0, 12), 35.0f);
  EXPECT_FLOAT_EQ(x(1, 12), 35.0f);
}

TEST(Features, MatrixWithoutPolarHasTwelveColumns) {
  const std::vector<recon::ComptonRing> rings{sample_ring()};
  const nn::Tensor x = feature_matrix(rings, false, 0.0);
  EXPECT_EQ(x.cols(), kBaseFeatureCount);
}

TEST(Features, PerRingPolarColumn) {
  const std::vector<recon::ComptonRing> rings{sample_ring(), sample_ring()};
  const std::vector<double> polars{10.0, 70.0};
  const nn::Tensor x =
      feature_matrix(rings, std::span<const double>(polars));
  EXPECT_FLOAT_EQ(x(0, 12), 10.0f);
  EXPECT_FLOAT_EQ(x(1, 12), 70.0f);
  const std::vector<double> wrong{10.0};
  EXPECT_THROW(feature_matrix(rings, std::span<const double>(wrong)),
               std::invalid_argument);
}

TEST(Features, BackgroundLabelConvention) {
  auto ring = sample_ring();
  EXPECT_FLOAT_EQ(background_label(ring), 0.0f);
  ring.origin = detector::Origin::kBackground;
  EXPECT_FLOAT_EQ(background_label(ring), 1.0f);
}

TEST(Features, DetaTargetIsLogOfTrueError) {
  auto ring = sample_ring();
  // axis.s = 1 for s = +z; eta = 0.4 -> |error| = 0.6.
  const core::Vec3 s{0.0, 0.0, 1.0};
  EXPECT_NEAR(deta_target(ring, s), std::log(0.6), 1e-6);
}

TEST(Features, DetaTargetClamped) {
  auto ring = sample_ring();
  // Perfect ring: error 0 -> floored.
  ring.eta = ring.axis.dot(core::Vec3{0, 0, 1});
  EXPECT_NEAR(deta_target(ring, {0, 0, 1}, 1e-4, 2.0), std::log(1e-4), 1e-6);
  // Catastrophic ring: capped.
  ring.eta = -1.0;
  EXPECT_NEAR(deta_target(ring, {0, 0, 1}, 1e-4, 2.0), std::log(2.0), 1e-6);
  EXPECT_THROW(deta_target(ring, {0, 0, 1}, 0.0, 2.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace adapt::pipeline
