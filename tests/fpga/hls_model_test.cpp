#include "fpga/hls_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adapt::fpga {
namespace {

/// The background network's fused layer stack (paper Sec. V kernel).
std::vector<KernelLayerSpec> background_kernel() {
  return {
      KernelLayerSpec{13, 256, true},
      KernelLayerSpec{256, 128, true},
      KernelLayerSpec{128, 64, true},
      KernelLayerSpec{64, 1, false},
  };
}

TEST(HlsModel, Int8BeatsFp32OnEveryHeadlineMetric) {
  const auto layers = background_kernel();
  const KernelReport int8 = synthesize(layers, DataType::kInt8);
  const KernelReport fp32 = synthesize(layers, DataType::kFp32);
  // Table III shape.
  EXPECT_LT(int8.latency_cycles, fp32.latency_cycles);
  EXPECT_LT(int8.ii_cycles, fp32.ii_cycles);
  EXPECT_LT(int8.bram, fp32.bram);
  EXPECT_LT(int8.dsp, fp32.dsp);
  EXPECT_LT(int8.ff, fp32.ff);
  EXPECT_LT(int8.lut, fp32.lut);
}

TEST(HlsModel, ThroughputRatioNearPaper) {
  // Paper: INT8 achieves ~1.75x the FP32 throughput.
  const auto layers = background_kernel();
  const KernelReport int8 = synthesize(layers, DataType::kInt8);
  const KernelReport fp32 = synthesize(layers, DataType::kFp32);
  const double ratio =
      int8.throughput_per_second() / fp32.throughput_per_second();
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.1);
}

TEST(HlsModel, MagnitudesTrackTableIII) {
  // Loose order-of-magnitude anchors to the paper's synthesis.
  const auto layers = background_kernel();
  const KernelReport int8 = synthesize(layers, DataType::kInt8);
  EXPECT_GT(int8.ii_cycles, 400u);
  EXPECT_LT(int8.ii_cycles, 1000u);
  EXPECT_GT(int8.latency_cycles, 600u);
  EXPECT_LT(int8.latency_cycles, 1300u);
  EXPECT_GT(int8.dsp, 2000u);
  EXPECT_LT(int8.dsp, 8000u);
  EXPECT_LT(int8.bram, 40u);

  const KernelReport fp32 = synthesize(layers, DataType::kFp32);
  EXPECT_GT(fp32.ii_cycles, 900u);
  EXPECT_LT(fp32.ii_cycles, 1700u);
  EXPECT_GT(fp32.bram, 80u);
  EXPECT_GT(fp32.dsp, int8.dsp);
}

TEST(HlsModel, PipelinedBatchLatencyLaw) {
  // n inputs: n * II + (L - II) cycles (paper, citing [37]).
  const auto layers = background_kernel();
  const KernelReport r = synthesize(layers, DataType::kInt8);
  EXPECT_EQ(r.batch_latency_cycles(1), r.latency_cycles);
  EXPECT_EQ(r.batch_latency_cycles(10),
            10 * r.ii_cycles + (r.latency_cycles - r.ii_cycles));
  EXPECT_EQ(r.batch_latency_cycles(0), 0u);
}

TEST(HlsModel, BatchLatencyMsFor597Rings) {
  // Paper Sec. V: 597 rings -> 4.13 ms INT8, 7.22 ms FP32 at 100 MHz.
  const auto layers = background_kernel();
  const double int8_ms =
      synthesize(layers, DataType::kInt8).batch_latency_ms(597);
  const double fp32_ms =
      synthesize(layers, DataType::kFp32).batch_latency_ms(597);
  EXPECT_GT(int8_ms, 2.5);
  EXPECT_LT(int8_ms, 6.0);
  EXPECT_GT(fp32_ms, 5.5);
  EXPECT_LT(fp32_ms, 9.5);
}

TEST(HlsModel, IiDominatedByLargestLayer) {
  const auto layers = background_kernel();
  const KernelReport r = synthesize(layers, DataType::kInt8);
  std::size_t max_stage_ii = 0;
  for (const auto& stage : r.stages)
    max_stage_ii = std::max(max_stage_ii, stage.ii_cycles);
  // Stage 1 (256 x 128 MACs) dominates.
  EXPECT_EQ(max_stage_ii, r.stages[1].ii_cycles);
  EXPECT_GE(r.ii_cycles, max_stage_ii);
}

TEST(HlsModel, SmallWeightsLiveInLutram) {
  const auto layers = background_kernel();
  const KernelReport int8 = synthesize(layers, DataType::kInt8);
  // 13x256 INT8 = 3.3 KB and 64x1 = 64 B fit in LUTRAM -> 0 BRAM.
  EXPECT_EQ(int8.stages[0].bram, 0u);
  EXPECT_EQ(int8.stages[3].bram, 0u);
  EXPECT_GT(int8.stages[1].bram, 0u);
}

TEST(HlsModel, ClockScalesLatencyMsNotCycles) {
  const auto layers = background_kernel();
  HlsConfig fast;
  fast.clock_ns = 5.0;  // 200 MHz.
  HlsConfig slow;
  slow.clock_ns = 10.0;
  const KernelReport rf = synthesize(layers, DataType::kInt8, fast);
  const KernelReport rs = synthesize(layers, DataType::kInt8, slow);
  EXPECT_EQ(rf.ii_cycles, rs.ii_cycles);
  EXPECT_NEAR(rs.batch_latency_ms(100) / rf.batch_latency_ms(100), 2.0,
              1e-9);
}

TEST(HlsModel, WiderNetworkCostsMoreEverywhere) {
  const auto small = background_kernel();
  std::vector<KernelLayerSpec> big = small;
  big[1].out_features *= 2;
  big[2].in_features *= 2;
  const KernelReport rs = synthesize(small, DataType::kInt8);
  const KernelReport rb = synthesize(big, DataType::kInt8);
  EXPECT_GT(rb.ii_cycles, rs.ii_cycles);
  EXPECT_GT(rb.dsp, rs.dsp);
  EXPECT_GE(rb.bram, rs.bram);
}

TEST(HlsModel, CustomDataTypeModelHonored) {
  DataTypeModel custom = DataTypeModel::int8();
  custom.sustained_macs_per_cycle *= 2.0;
  const auto layers = background_kernel();
  const KernelReport base = synthesize(layers, DataType::kInt8);
  const KernelReport doubled =
      synthesize(layers, DataType::kInt8, {}, &custom);
  EXPECT_LT(doubled.ii_cycles, base.ii_cycles);
}

TEST(HlsModel, AdaptersFromQuantTypes) {
  quant::FusedLayer f;
  f.weight = nn::Tensor(4, 8);
  f.bias.assign(4, 0.0f);
  f.relu = true;
  const auto spec = kernel_spec_from(std::vector<quant::FusedLayer>{f});
  ASSERT_EQ(spec.size(), 1u);
  EXPECT_EQ(spec[0].in_features, 8u);
  EXPECT_EQ(spec[0].out_features, 4u);
  EXPECT_TRUE(spec[0].relu);
}

TEST(HlsModel, RejectsDegenerateInputs) {
  EXPECT_THROW(synthesize({}, DataType::kInt8), std::invalid_argument);
  EXPECT_THROW(synthesize({KernelLayerSpec{0, 4, false}}, DataType::kInt8),
               std::invalid_argument);
}

TEST(HlsModel, ToStringNames) {
  EXPECT_STREQ(to_string(DataType::kInt8), "INT8");
  EXPECT_STREQ(to_string(DataType::kFp32), "FP32");
}

}  // namespace
}  // namespace adapt::fpga
