#include "detector/readout.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.hpp"

namespace adapt::detector {
namespace {

RawEvent one_hit_event(const core::Vec3& pos, double energy) {
  RawEvent e;
  e.hits.push_back(TrueHit{pos, energy, -1});
  e.true_direction = {0, 0, -1};
  e.true_energy = energy;
  e.fully_absorbed = true;
  return e;
}

TEST(Readout, QuantizesXyToFiberPitch) {
  const Geometry g;
  ReadoutConfig rc;
  rc.energy_res_stochastic = 1e-9;
  rc.energy_res_floor = 1e-9;
  const ReadoutModel readout(g, rc);
  core::Rng rng(1);

  const auto out =
      readout.read_out(one_hit_event({3.26, -7.74, -0.5}, 1.0), rng);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->hits.size(), 1u);
  // Nearest multiples of 0.5.
  EXPECT_NEAR(out->hits[0].position.x, 3.5, 1e-12);
  EXPECT_NEAR(out->hits[0].position.y, -7.5, 1e-12);
}

TEST(Readout, ZStaysWithinTile) {
  const Geometry g;
  const ReadoutModel readout(g, {});
  core::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto out =
        readout.read_out(one_hit_event({0.0, 0.0, -1.49}, 0.5), rng);
    ASSERT_TRUE(out.has_value());
    EXPECT_LE(out->hits[0].position.z, 0.0);
    EXPECT_GE(out->hits[0].position.z, -1.5);
    EXPECT_EQ(out->hits[0].layer, 0);
  }
}

TEST(Readout, EnergyResolutionScalesAsModel) {
  const Geometry g;
  const ReadoutModel readout(g, {});
  // sigma/E = sqrt(a^2/E + b^2).
  const double e = 0.662;
  const double expected =
      e * std::sqrt(0.025 * 0.025 / e + 0.02 * 0.02);
  EXPECT_NEAR(readout.energy_sigma(e), expected, 1e-12);
  EXPECT_DOUBLE_EQ(readout.energy_sigma(0.0), 0.0);
}

TEST(Readout, MeasuredEnergyIsUnbiased) {
  const Geometry g;
  const ReadoutModel readout(g, {});
  core::Rng rng(3);
  core::RunningStat stat;
  for (int i = 0; i < 5000; ++i) {
    const auto out =
        readout.read_out(one_hit_event({0.0, 0.0, -0.5}, 1.0), rng);
    ASSERT_TRUE(out.has_value());
    stat.add(out->hits[0].energy);
  }
  EXPECT_NEAR(stat.mean(), 1.0, 0.005);
  EXPECT_NEAR(stat.stddev(), readout.energy_sigma(1.0), 0.005);
}

TEST(Readout, ThresholdDropsSmallDeposits) {
  const Geometry g;
  ReadoutConfig rc;
  rc.energy_res_stochastic = 1e-9;
  rc.energy_res_floor = 1e-9;
  const ReadoutModel readout(g, rc);
  core::Rng rng(4);
  // 10 keV deposit: below the 30 keV threshold.
  EXPECT_FALSE(readout.read_out(one_hit_event({0, 0, -0.5}, 0.010), rng)
                   .has_value());
  EXPECT_TRUE(readout.read_out(one_hit_event({0, 0, -0.5}, 0.100), rng)
                  .has_value());
}

TEST(Readout, MergesSameCellDeposits) {
  const Geometry g;
  ReadoutConfig rc;
  rc.energy_res_stochastic = 1e-9;
  rc.energy_res_floor = 1e-9;
  rc.z_resolution = 1e-9;
  const ReadoutModel readout(g, rc);
  core::Rng rng(5);

  RawEvent e;
  // Two deposits 1 mm apart in the same tile: same fiber cell.
  e.hits.push_back(TrueHit{{1.01, 1.01, -0.5}, 0.3, 0});
  e.hits.push_back(TrueHit{{1.09, 1.01, -0.5}, 0.2, 0});
  const auto out = readout.read_out(e, rng);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->hits.size(), 1u);
  EXPECT_NEAR(out->hits[0].energy, 0.5, 1e-6);
}

TEST(Readout, DistantHitsStaySeparateAndOrdered) {
  const Geometry g;
  ReadoutConfig rc;
  rc.energy_res_stochastic = 1e-9;
  rc.energy_res_floor = 1e-9;
  const ReadoutModel readout(g, rc);
  core::Rng rng(6);

  RawEvent e;
  e.hits.push_back(TrueHit{{0.0, 0.0, -0.5}, 0.2, 0});
  e.hits.push_back(TrueHit{{5.0, 5.0, -10.5}, 0.4, 1});
  const auto out = readout.read_out(e, rng);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->hits.size(), 2u);
  // Chronological order preserved.
  EXPECT_EQ(out->hits[0].layer, 0);
  EXPECT_EQ(out->hits[1].layer, 1);
  EXPECT_NEAR(out->hits[0].energy, 0.2, 1e-6);
}

TEST(Readout, MaxHitsKeepsLargestDeposits) {
  const Geometry g;
  ReadoutConfig rc;
  rc.energy_res_stochastic = 1e-9;
  rc.energy_res_floor = 1e-9;
  rc.max_hits = 2;
  const ReadoutModel readout(g, rc);
  core::Rng rng(7);

  RawEvent e;
  e.hits.push_back(TrueHit{{0.0, 0.0, -0.5}, 0.10, 0});
  e.hits.push_back(TrueHit{{5.0, 0.0, -10.5}, 0.50, 1});
  e.hits.push_back(TrueHit{{-5.0, 0.0, -20.5}, 0.30, 2});
  const auto out = readout.read_out(e, rng);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->hits.size(), 2u);
  // The 0.10 MeV hit was dropped; chronological order retained.
  EXPECT_EQ(out->hits[0].layer, 1);
  EXPECT_EQ(out->hits[1].layer, 2);
}

TEST(Readout, QuotedUncertaintiesPopulated) {
  const Geometry g;
  const ReadoutModel readout(g, {});
  core::Rng rng(8);
  const auto out = readout.read_out(one_hit_event({0, 0, -0.5}, 1.0), rng);
  ASSERT_TRUE(out.has_value());
  const MeasuredHit& h = out->hits[0];
  EXPECT_GT(h.sigma_energy, 0.0);
  EXPECT_NEAR(h.sigma_position.x, 0.5 / std::sqrt(12.0), 1e-12);
  EXPECT_NEAR(h.sigma_position.z, 0.3, 1e-12);
}

TEST(Readout, PerturbationIncreasesSpread) {
  const Geometry g;
  ReadoutConfig clean;
  ReadoutConfig noisy = clean;
  noisy.perturbation_percent = 10.0;
  const ReadoutModel r_clean(g, clean);
  const ReadoutModel r_noisy(g, noisy);

  core::Rng rng1(9);
  core::Rng rng2(9);
  core::RunningStat clean_e;
  core::RunningStat noisy_e;
  for (int i = 0; i < 3000; ++i) {
    const auto a = r_clean.read_out(one_hit_event({10, 10, -0.5}, 1.0), rng1);
    const auto b = r_noisy.read_out(one_hit_event({10, 10, -0.5}, 1.0), rng2);
    if (a) clean_e.add(a->hits[0].energy);
    if (b) noisy_e.add(b->hits[0].energy);
  }
  // Fig. 10 knob: 10% multiplicative noise should dominate the ~3%
  // intrinsic resolution.
  EXPECT_GT(noisy_e.stddev(), 2.0 * clean_e.stddev());
}

TEST(Readout, TruthMetadataPassesThrough) {
  const Geometry g;
  const ReadoutModel readout(g, {});
  core::Rng rng(10);
  RawEvent e = one_hit_event({0, 0, -0.5}, 1.0);
  e.origin = Origin::kBackground;
  e.fully_absorbed = false;
  const auto out = readout.read_out(e, rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->origin, Origin::kBackground);
  EXPECT_FALSE(out->fully_absorbed);
  EXPECT_DOUBLE_EQ(out->true_energy, 1.0);
}

TEST(Readout, NoiseHitsAppendedAtConfiguredRate) {
  const Geometry g;
  ReadoutConfig rc;
  rc.energy_res_stochastic = 1e-9;
  rc.energy_res_floor = 1e-9;
  rc.noise_hits_per_event = 2.0;
  rc.max_hits = 16;
  const ReadoutModel readout(g, rc);
  core::Rng rng(21);
  core::RunningStat extra;
  for (int i = 0; i < 1500; ++i) {
    const auto out = readout.read_out(one_hit_event({0, 0, -0.5}, 1.0), rng);
    ASSERT_TRUE(out.has_value());
    extra.add(static_cast<double>(out->hits.size()) - 1.0);
  }
  // Poisson(2) spurious hits on top of the single real one.
  EXPECT_NEAR(extra.mean(), 2.0, 0.15);
}

TEST(Readout, NoiseHitsLieInMaterialAboveThreshold) {
  const Geometry g;
  ReadoutConfig rc;
  rc.noise_hits_per_event = 3.0;
  rc.max_hits = 16;
  const ReadoutModel readout(g, rc);
  core::Rng rng(22);
  for (int i = 0; i < 300; ++i) {
    const auto out = readout.read_out(one_hit_event({0, 0, -0.5}, 1.0), rng);
    ASSERT_TRUE(out.has_value());
    for (const auto& h : out->hits) {
      EXPECT_GE(h.energy, rc.hit_threshold);
      EXPECT_GE(h.layer, 0);
      EXPECT_LE(std::abs(h.position.x), g.config().tile_half_width);
    }
  }
}

TEST(Readout, NoiseDefaultsOff) {
  const Geometry g;
  ReadoutConfig rc;
  rc.energy_res_stochastic = 1e-9;
  rc.energy_res_floor = 1e-9;
  const ReadoutModel readout(g, rc);
  core::Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const auto out = readout.read_out(one_hit_event({0, 0, -0.5}, 1.0), rng);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->hits.size(), 1u);
  }
}

TEST(Readout, RejectsBadConfig) {
  const Geometry g;
  ReadoutConfig rc;
  rc.fiber_pitch = 0.0;
  EXPECT_THROW(ReadoutModel(g, rc), std::invalid_argument);
  rc = ReadoutConfig{};
  rc.max_hits = 0;
  EXPECT_THROW(ReadoutModel(g, rc), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::detector
