#include "detector/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/rng.hpp"

namespace adapt::detector {
namespace {

TEST(Geometry, DefaultLayersAreStackedDownward) {
  const Geometry g;
  ASSERT_EQ(g.n_layers(), 4);
  EXPECT_DOUBLE_EQ(g.layer(0).z_top, 0.0);
  EXPECT_DOUBLE_EQ(g.layer(0).z_bottom, -1.5);
  EXPECT_DOUBLE_EQ(g.layer(1).z_top, -10.0);
  EXPECT_DOUBLE_EQ(g.layer(3).z_top, -30.0);
  EXPECT_DOUBLE_EQ(g.z_min(), -31.5);
}

TEST(Geometry, RejectsInvalidConfig) {
  GeometryConfig c;
  c.n_layers = 0;
  EXPECT_THROW(Geometry{c}, std::invalid_argument);
  c = GeometryConfig{};
  c.layer_pitch = 0.5;  // Thinner than the tile: overlap.
  EXPECT_THROW(Geometry{c}, std::invalid_argument);
}

TEST(Geometry, LayerAtFindsCorrectSlab) {
  const Geometry g;
  EXPECT_EQ(g.layer_at(-0.5), 0);
  EXPECT_EQ(g.layer_at(-10.7), 1);
  EXPECT_EQ(g.layer_at(-31.0), 3);
  EXPECT_EQ(g.layer_at(-5.0), -1);   // Gap between layers.
  EXPECT_EQ(g.layer_at(1.0), -1);    // Above the stack.
  EXPECT_EQ(g.layer_at(-40.0), -1);  // Below the stack.
}

TEST(Geometry, ContainsChecksLateralBounds) {
  const Geometry g;
  EXPECT_TRUE(g.contains({0.0, 0.0, -0.5}));
  EXPECT_TRUE(g.contains({19.9, -19.9, -0.5}));
  EXPECT_FALSE(g.contains({20.1, 0.0, -0.5}));
  EXPECT_FALSE(g.contains({0.0, -20.1, -0.5}));
  EXPECT_FALSE(g.contains({0.0, 0.0, -5.0}));
}

TEST(Geometry, BoundingRadiusEnclosesEveryCorner) {
  const Geometry g;
  const double r = g.bounding_radius();
  const core::Vec3 c = g.center();
  const double w = g.config().tile_half_width;
  for (double sx : {-1.0, 1.0})
    for (double sy : {-1.0, 1.0})
      for (double z : {0.0, g.z_min()}) {
        const core::Vec3 corner{sx * w, sy * w, z};
        EXPECT_LE((corner - c).norm(), r);
      }
}

TEST(GeometryTrace, VerticalRayCrossesAllLayers) {
  const Geometry g;
  const auto segs = g.trace({0.0, 0.0, 10.0}, {0.0, 0.0, -1.0});
  ASSERT_EQ(segs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(segs[static_cast<std::size_t>(i)].layer, i);
    EXPECT_NEAR(segs[static_cast<std::size_t>(i)].t_exit -
                    segs[static_cast<std::size_t>(i)].t_enter,
                1.5, 1e-9);
  }
  // Ordered by increasing t.
  for (std::size_t i = 1; i < segs.size(); ++i)
    EXPECT_GT(segs[i].t_enter, segs[i - 1].t_exit - 1e-12);
}

TEST(GeometryTrace, RayMissingLaterallyHasNoSegments) {
  const Geometry g;
  const auto segs = g.trace({25.0, 0.0, 10.0}, {0.0, 0.0, -1.0});
  EXPECT_TRUE(segs.empty());
}

TEST(GeometryTrace, ObliqueRayHasLongerPath) {
  const Geometry g;
  const double c45 = std::sqrt(0.5);
  const auto segs = g.trace({-10.0, 0.0, 5.0}, {c45, 0.0, -c45});
  ASSERT_FALSE(segs.empty());
  // 45-degree incidence: path length in a slab is thickness * sqrt(2).
  EXPECT_NEAR(segs[0].t_exit - segs[0].t_enter, 1.5 * std::sqrt(2.0), 1e-9);
}

TEST(GeometryTrace, HorizontalRayThroughOneLayer) {
  const Geometry g;
  const auto segs = g.trace({-30.0, 0.0, -0.75}, {1.0, 0.0, 0.0});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].layer, 0);
  // Crosses the full 40 cm tile width.
  EXPECT_NEAR(segs[0].t_exit - segs[0].t_enter, 40.0, 1e-9);
}

TEST(GeometryTrace, HorizontalRayInGapMissesEverything) {
  const Geometry g;
  const auto segs = g.trace({-30.0, 0.0, -5.0}, {1.0, 0.0, 0.0});
  EXPECT_TRUE(segs.empty());
}

TEST(GeometryTrace, TMinSkipsEarlierSegments) {
  const Geometry g;
  // Starting parameter beyond layer 0's exit: only deeper layers.
  const auto all = g.trace({0.0, 0.0, 10.0}, {0.0, 0.0, -1.0});
  ASSERT_EQ(all.size(), 4u);
  const auto later = g.trace({0.0, 0.0, 10.0}, {0.0, 0.0, -1.0},
                             all[0].t_exit + 0.1);
  ASSERT_EQ(later.size(), 3u);
  EXPECT_EQ(later[0].layer, 1);
}

TEST(GeometryTrace, UpwardRayFromBelowSeesLayersInReverse) {
  const Geometry g;
  const auto segs = g.trace({0.0, 0.0, -50.0}, {0.0, 0.0, 1.0});
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[0].layer, 3);
  EXPECT_EQ(segs[3].layer, 0);
}

TEST(GeometryTrace, RandomRaysSegmentsLieInsideMaterial) {
  const Geometry g;
  core::Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const core::Vec3 origin{rng.uniform(-40, 40), rng.uniform(-40, 40),
                            rng.uniform(-50, 20)};
    const core::Vec3 dir = rng.isotropic_direction();
    for (const auto& seg : g.trace(origin, dir)) {
      const double t_mid = 0.5 * (seg.t_enter + seg.t_exit);
      EXPECT_TRUE(g.contains(origin + dir * t_mid))
          << "segment midpoint outside material";
    }
  }
}

}  // namespace
}  // namespace adapt::detector
