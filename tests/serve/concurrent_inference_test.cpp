#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "quant/qat_linear.hpp"
#include "serve/synthetic_models.hpp"

// Inference on a SHARED model from concurrent threads must be safe and
// deterministic: forward(training=false) may not write any member
// state.  These tests are the TSan targets for the fixes in
// BatchNorm1d (member inference scratch), QatLinear (unconditional
// weight-cache write), and QuantizedMlp (now thread_local ping-pong
// buffers).  Run under the static-analysis gate's TSan stage; without
// -fsanitize=thread they still verify results match the
// single-threaded reference.

namespace adapt::serve {
namespace {

constexpr std::size_t kThreads = 4;
constexpr int kRepeats = 8;

struct Stream {
  std::vector<recon::ComptonRing> rings;
  std::vector<double> polar;
};

Stream make_stream(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  Stream s;
  for (std::size_t i = 0; i < n; ++i) {
    s.rings.push_back(synthetic_ring(rng));
    s.polar.push_back(rng.uniform(0.0, 90.0));
  }
  return s;
}

template <typename Fn>
void run_concurrently(Fn&& fn) {
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&fn, t] { fn(t); });
  for (std::thread& t : threads) t.join();
}

TEST(ConcurrentInference, SharedFp32BackgroundNetWithBatchNorm) {
  // build_mlp's default blocks start with BatchNorm1d — the layer
  // whose inference scratch used to be a member.
  auto net = synthetic_background_net(61);
  const Stream s = make_stream(24, 1);
  const auto reference = net.logits_batch(s.rings, s.polar);

  run_concurrently([&](std::size_t) {
    for (int i = 0; i < kRepeats; ++i)
      EXPECT_EQ(net.logits_batch(s.rings, s.polar), reference);
  });
}

TEST(ConcurrentInference, SharedInt8Engine) {
  auto net = synthetic_background_net_int8(62);
  const Stream s = make_stream(24, 2);
  const auto reference = net.logits_batch(s.rings, s.polar);

  run_concurrently([&](std::size_t) {
    for (int i = 0; i < kRepeats; ++i)
      EXPECT_EQ(net.logits_batch(s.rings, s.polar), reference);
  });
}

TEST(ConcurrentInference, SharedDEtaNet) {
  auto net = synthetic_deta_net(63);
  const Stream s = make_stream(24, 3);
  const auto reference = net.predict_batch(s.rings, s.polar);

  run_concurrently([&](std::size_t) {
    for (int i = 0; i < kRepeats; ++i)
      EXPECT_EQ(net.predict_batch(s.rings, s.polar), reference);
  });
}

TEST(ConcurrentInference, SharedQatLinearInferenceForward) {
  core::Rng rng(64);
  quant::QatLinear layer(8, 4, rng);
  nn::Tensor x(16, 8);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.vec()[i] = static_cast<float>(rng.normal());
  const nn::Tensor reference = layer.forward(x, /*training=*/false);

  run_concurrently([&](std::size_t) {
    for (int i = 0; i < kRepeats; ++i) {
      const nn::Tensor y = layer.forward(x, /*training=*/false);
      ASSERT_EQ(y.size(), reference.size());
      for (std::size_t k = 0; k < y.size(); ++k)
        EXPECT_EQ(y.vec()[k], reference.vec()[k]);
    }
  });
}

// Distinct polar guesses per thread: concurrent callers with
// DIFFERENT inputs must not bleed into each other (the failure mode a
// shared scratch buffer produces).
TEST(ConcurrentInference, DistinctInputsDoNotBleed) {
  auto net = synthetic_background_net(65);
  const Stream s = make_stream(16, 4);

  std::vector<std::vector<float>> references(kThreads);
  std::vector<std::vector<double>> polar_sets(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    polar_sets[t].assign(s.rings.size(),
                         5.0 + 20.0 * static_cast<double>(t));
    references[t] = net.logits_batch(s.rings, polar_sets[t]);
  }

  run_concurrently([&](std::size_t t) {
    for (int i = 0; i < kRepeats; ++i)
      EXPECT_EQ(net.logits_batch(s.rings, polar_sets[t]), references[t]);
  });
}

}  // namespace
}  // namespace adapt::serve
