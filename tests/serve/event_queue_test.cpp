#include "serve/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/contract.hpp"
#include "core/telemetry.hpp"

namespace adapt::serve {
namespace {

ServeRequest request(std::uint64_t sequence) {
  ServeRequest r;
  r.sequence = sequence;
  r.enqueued_at = std::chrono::steady_clock::now();
  return r;
}

std::vector<std::uint64_t> sequences(const std::vector<ServeRequest>& batch) {
  std::vector<std::uint64_t> out;
  for (const ServeRequest& r : batch) out.push_back(r.sequence);
  return out;
}

TEST(EventQueue, PopsInFifoOrder) {
  EventQueue q(8);
  for (std::uint64_t s = 1; s <= 3; ++s) EXPECT_TRUE(q.push(request(s)));
  EXPECT_EQ(q.depth(), 3u);

  std::vector<ServeRequest> batch;
  const std::size_t n = q.pop_batch(batch, 8, std::chrono::microseconds(0));
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(sequences(batch), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(q.depth(), 0u);
}

TEST(EventQueue, ShedsOldestWhenFull) {
  EventQueue q(2);
  EXPECT_TRUE(q.push(request(1)));
  EXPECT_TRUE(q.push(request(2)));
  // Full: admitting 3 sheds 1, the oldest.
  EXPECT_TRUE(q.push(request(3)));
  EXPECT_EQ(q.shed_count(), 1u);
  EXPECT_EQ(q.depth(), 2u);

  std::vector<ServeRequest> batch;
  q.pop_batch(batch, 4, std::chrono::microseconds(0));
  EXPECT_EQ(sequences(batch), (std::vector<std::uint64_t>{2, 3}));
}

TEST(EventQueue, RespectsMaxItems) {
  EventQueue q(16);
  for (std::uint64_t s = 1; s <= 10; ++s) q.push(request(s));
  std::vector<ServeRequest> batch;
  EXPECT_EQ(q.pop_batch(batch, 4, std::chrono::microseconds(0)), 4u);
  EXPECT_EQ(sequences(batch), (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(q.depth(), 6u);
}

TEST(EventQueue, CloseRejectsProducersAndDrainsConsumer) {
  EventQueue q(8);
  q.push(request(1));
  q.push(request(2));
  q.close();
  EXPECT_TRUE(q.closed());

  EXPECT_FALSE(q.push(request(3)));
  EXPECT_EQ(q.rejected_count(), 1u);

  std::vector<ServeRequest> batch;
  EXPECT_EQ(q.pop_batch(batch, 8, std::chrono::microseconds(0)), 2u);
  EXPECT_EQ(q.pop_batch(batch, 8, std::chrono::microseconds(0)), 0u);
}

TEST(EventQueue, RejectsZeroCapacity) {
  EXPECT_THROW(EventQueue(0), core::ContractViolation);
}

TEST(EventQueue, ConsumerWakesOnLatePush) {
  EventQueue q(8);
  std::vector<ServeRequest> batch;
  std::thread consumer([&] {
    // Blocks until the producer below pushes.
    q.pop_batch(batch, 4, std::chrono::microseconds(100));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.push(request(7));
  consumer.join();
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(batch.front().sequence, 7u);
}

// The MPSC contract under real contention: several producers, one
// consumer, no losses when capacity suffices.  This is the test the
// TSan stage of the static-analysis gate leans on.
TEST(EventQueue, MultiProducerDeliversEverySequence) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 500;
  EventQueue q(kProducers * kPerProducer);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        q.push(request(static_cast<std::uint64_t>(p) * kPerProducer + i + 1));
    });
  }

  std::vector<std::uint64_t> seen;
  std::thread consumer([&] {
    std::vector<ServeRequest> batch;
    for (;;) {
      batch.clear();
      const std::size_t n =
          q.pop_batch(batch, 64, std::chrono::microseconds(100));
      if (n == 0) break;
      for (const ServeRequest& r : batch) seen.push_back(r.sequence);
    }
  });

  for (std::thread& t : producers) t.join();
  q.close();
  consumer.join();

  EXPECT_EQ(q.shed_count(), 0u);
  ASSERT_EQ(seen.size(), kProducers * kPerProducer);
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

// Regression: a zero flush deadline must mean "flush whatever is
// visible now" — return the partial batch without entering the timed
// fill wait (pre-fix, the code called wait_until with an
// already-expired deadline, one futex round-trip per pop and a
// busy-respin hazard on implementations that report spurious wakeups
// as no_timeout).  The skipped wait is counted by the queue itself
// under serve.flush.immediate.
TEST(EventQueue, ZeroDeadlineFlushesVisibleNow) {
  core::telemetry::set_enabled(true);
  const std::uint64_t immediate_before =
      core::telemetry::snapshot().counters["serve.flush.immediate"];

  EventQueue q(16);
  for (std::uint64_t s = 1; s <= 3; ++s) q.push(request(s));

  // max_items far above the visible depth: a deadline-respecting pop
  // would wait for the batch to fill; the zero-deadline pop must not.
  std::vector<ServeRequest> batch;
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = q.pop_batch(batch, 16, std::chrono::microseconds(0));
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_EQ(n, 3u);
  EXPECT_EQ(sequences(batch), (std::vector<std::uint64_t>{1, 2, 3}));
  // Generous bound — the point is "did not park on the condvar", and
  // any wait path would be >= the deadline granularity, not ~0.
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  EXPECT_LT(elapsed_ms, 100.0);

  const std::uint64_t immediate_after =
      core::telemetry::snapshot().counters["serve.flush.immediate"];
  EXPECT_EQ(immediate_after, immediate_before + 1);
  core::telemetry::set_enabled(false);
}

// The conservation ledger in a fully deterministic setting: pushes
// overflow the capacity (shed-oldest), a pop drains part of the rest,
// and stats() must account for every request as popped, shed, or
// resident.  The destructor re-checks the same identity in checked
// builds.
TEST(EventQueue, LedgerBalancesAfterShedAndPartialDrain) {
  EventQueue q(4);
  for (std::uint64_t s = 1; s <= 10; ++s) EXPECT_TRUE(q.push(request(s)));

  std::vector<ServeRequest> batch;
  EXPECT_EQ(q.pop_batch(batch, 3, std::chrono::microseconds(0)), 3u);
  // Oldest survivors: 10 pushed into capacity 4 shed 1..6.
  EXPECT_EQ(sequences(batch), (std::vector<std::uint64_t>{7, 8, 9}));

  const EventQueue::Stats stats = q.stats();
  EXPECT_EQ(stats.pushed, 10u);
  EXPECT_EQ(stats.shed, 6u);
  EXPECT_EQ(stats.popped, 3u);
  EXPECT_EQ(stats.resident, 1u);
  EXPECT_EQ(stats.pushed, stats.popped + stats.shed + stats.resident);
}

// Multi-producer ledger stress: a deliberately tiny queue so
// shed-oldest races partially drained pops from every producer at
// once.  Whatever interleaving happens, no request may be lost or
// double-counted: pushed == popped + shed + resident, and the
// consumer-side delivery count must equal the popped counter.  Runs
// repeatedly under TSan with checked contracts in the
// static-analysis gate.
TEST(EventQueue, MultiProducerLedgerStress) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  EventQueue q(32);  // Tiny: forces heavy shedding under contention.

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        q.push(request(static_cast<std::uint64_t>(p) * kPerProducer + i + 1));
    });
  }

  std::atomic<std::uint64_t> delivered{0};
  std::thread consumer([&] {
    std::vector<ServeRequest> batch;
    for (;;) {
      batch.clear();
      // Zero deadline: poll-style pops maximize the overlap between
      // shed-oldest in push and the drain loop here.
      const std::size_t n =
          q.pop_batch(batch, 16, std::chrono::microseconds(0));
      if (n == 0) break;
      delivered.fetch_add(n, std::memory_order_relaxed);
    }
  });

  for (std::thread& t : producers) t.join();
  q.close();
  consumer.join();

  const EventQueue::Stats stats = q.stats();
  EXPECT_EQ(stats.pushed, kProducers * kPerProducer);
  EXPECT_EQ(stats.resident, 0u);  // Consumer drained to the close.
  EXPECT_EQ(stats.popped, delivered.load());
  EXPECT_EQ(stats.pushed, stats.popped + stats.shed + stats.resident);
}

}  // namespace
}  // namespace adapt::serve
