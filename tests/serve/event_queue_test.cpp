#include "serve/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/contract.hpp"

namespace adapt::serve {
namespace {

ServeRequest request(std::uint64_t sequence) {
  ServeRequest r;
  r.sequence = sequence;
  r.enqueued_at = std::chrono::steady_clock::now();
  return r;
}

std::vector<std::uint64_t> sequences(const std::vector<ServeRequest>& batch) {
  std::vector<std::uint64_t> out;
  for (const ServeRequest& r : batch) out.push_back(r.sequence);
  return out;
}

TEST(EventQueue, PopsInFifoOrder) {
  EventQueue q(8);
  for (std::uint64_t s = 1; s <= 3; ++s) EXPECT_TRUE(q.push(request(s)));
  EXPECT_EQ(q.depth(), 3u);

  std::vector<ServeRequest> batch;
  const std::size_t n = q.pop_batch(batch, 8, std::chrono::microseconds(0));
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(sequences(batch), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(q.depth(), 0u);
}

TEST(EventQueue, ShedsOldestWhenFull) {
  EventQueue q(2);
  EXPECT_TRUE(q.push(request(1)));
  EXPECT_TRUE(q.push(request(2)));
  // Full: admitting 3 sheds 1, the oldest.
  EXPECT_TRUE(q.push(request(3)));
  EXPECT_EQ(q.shed_count(), 1u);
  EXPECT_EQ(q.depth(), 2u);

  std::vector<ServeRequest> batch;
  q.pop_batch(batch, 4, std::chrono::microseconds(0));
  EXPECT_EQ(sequences(batch), (std::vector<std::uint64_t>{2, 3}));
}

TEST(EventQueue, RespectsMaxItems) {
  EventQueue q(16);
  for (std::uint64_t s = 1; s <= 10; ++s) q.push(request(s));
  std::vector<ServeRequest> batch;
  EXPECT_EQ(q.pop_batch(batch, 4, std::chrono::microseconds(0)), 4u);
  EXPECT_EQ(sequences(batch), (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(q.depth(), 6u);
}

TEST(EventQueue, CloseRejectsProducersAndDrainsConsumer) {
  EventQueue q(8);
  q.push(request(1));
  q.push(request(2));
  q.close();
  EXPECT_TRUE(q.closed());

  EXPECT_FALSE(q.push(request(3)));
  EXPECT_EQ(q.rejected_count(), 1u);

  std::vector<ServeRequest> batch;
  EXPECT_EQ(q.pop_batch(batch, 8, std::chrono::microseconds(0)), 2u);
  EXPECT_EQ(q.pop_batch(batch, 8, std::chrono::microseconds(0)), 0u);
}

TEST(EventQueue, RejectsZeroCapacity) {
  EXPECT_THROW(EventQueue(0), core::ContractViolation);
}

TEST(EventQueue, ConsumerWakesOnLatePush) {
  EventQueue q(8);
  std::vector<ServeRequest> batch;
  std::thread consumer([&] {
    // Blocks until the producer below pushes.
    q.pop_batch(batch, 4, std::chrono::microseconds(100));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.push(request(7));
  consumer.join();
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(batch.front().sequence, 7u);
}

// The MPSC contract under real contention: several producers, one
// consumer, no losses when capacity suffices.  This is the test the
// TSan stage of the static-analysis gate leans on.
TEST(EventQueue, MultiProducerDeliversEverySequence) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 500;
  EventQueue q(kProducers * kPerProducer);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        q.push(request(static_cast<std::uint64_t>(p) * kPerProducer + i + 1));
    });
  }

  std::vector<std::uint64_t> seen;
  std::thread consumer([&] {
    std::vector<ServeRequest> batch;
    for (;;) {
      batch.clear();
      const std::size_t n =
          q.pop_batch(batch, 64, std::chrono::microseconds(100));
      if (n == 0) break;
      for (const ServeRequest& r : batch) seen.push_back(r.sequence);
    }
  });

  for (std::thread& t : producers) t.join();
  q.close();
  consumer.join();

  EXPECT_EQ(q.shed_count(), 0u);
  ASSERT_EQ(seen.size(), kProducers * kPerProducer);
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

}  // namespace
}  // namespace adapt::serve
