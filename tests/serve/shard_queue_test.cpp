#include "serve/shard_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/contract.hpp"

namespace adapt::serve {
namespace {

ServeRequest request(std::uint32_t stream, std::uint64_t sequence) {
  ServeRequest r;
  r.stream_id = stream;
  r.sequence = sequence;
  r.enqueued_at = std::chrono::steady_clock::now();
  return r;
}

ShardQueueConfig config(std::size_t capacity, std::size_t per_stream_cap,
                        std::size_t quantum) {
  ShardQueueConfig c;
  c.capacity = capacity;
  c.per_stream_cap = per_stream_cap;
  c.quantum = quantum;
  return c;
}

std::vector<std::uint32_t> stream_ids(const std::vector<ServeRequest>& batch) {
  std::vector<std::uint32_t> out;
  for (const ServeRequest& r : batch) out.push_back(r.stream_id);
  return out;
}

TEST(ShardQueue, SingleStreamPopsInFifoOrder) {
  ShardQueue q(config(16, 16, 4));
  for (std::uint64_t s = 1; s <= 5; ++s) EXPECT_TRUE(q.push(request(7, s)));

  std::vector<ServeRequest> batch;
  EXPECT_EQ(q.pop_batch(batch, 16, std::chrono::microseconds(0)), 5u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].stream_id, 7u);
    EXPECT_EQ(batch[i].sequence, i + 1);
  }
}

// The heart of the fairness layer: the batch filler cycles the
// resident streams in first-seen order, taking at most `quantum` per
// visit, so a deep stream cannot own the batch.
TEST(ShardQueue, BatchFillRoundRobinsAcrossStreams) {
  ShardQueue q(config(64, 32, 2));
  // Stream 0 floods 8; streams 1 and 2 trickle 2 each.
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) q.push(request(0, ++seq));
  for (int i = 0; i < 2; ++i) q.push(request(1, ++seq));
  for (int i = 0; i < 2; ++i) q.push(request(2, ++seq));

  std::vector<ServeRequest> batch;
  EXPECT_EQ(q.pop_batch(batch, 6, std::chrono::microseconds(0)), 6u);
  // Quantum 2, first-seen order: 2 of stream 0, 2 of stream 1, 2 of
  // stream 2 — NOT 6 of the flooding stream.
  EXPECT_EQ(stream_ids(batch), (std::vector<std::uint32_t>{0, 0, 1, 1, 2, 2}));
}

// The round-robin cursor persists across pop_batch calls: the next
// batch resumes where the last one stopped instead of restarting at
// the first-seen stream (which would systematically favor it).
TEST(ShardQueue, RoundRobinCursorPersistsAcrossBatches) {
  ShardQueue q(config(64, 32, 2));
  std::uint64_t seq = 0;
  for (int i = 0; i < 4; ++i) q.push(request(0, ++seq));
  for (int i = 0; i < 4; ++i) q.push(request(1, ++seq));

  std::vector<ServeRequest> first;
  EXPECT_EQ(q.pop_batch(first, 2, std::chrono::microseconds(0)), 2u);
  EXPECT_EQ(stream_ids(first), (std::vector<std::uint32_t>{0, 0}));

  // The cursor moved past stream 0, so the next batch starts at 1.
  std::vector<ServeRequest> second;
  EXPECT_EQ(q.pop_batch(second, 2, std::chrono::microseconds(0)), 2u);
  EXPECT_EQ(stream_ids(second), (std::vector<std::uint32_t>{1, 1}));
}

// Per-stream admission control: a stream at its cap sheds its own
// oldest request; other streams are untouched.
TEST(ShardQueue, StreamAtCapShedsItsOwnOldest) {
  ShardQueue q(config(64, 3, 4));
  q.push(request(1, 100));  // Innocent bystander.
  for (std::uint64_t s = 1; s <= 5; ++s) q.push(request(0, s));

  EXPECT_EQ(q.stream_depth(0), 3u);
  EXPECT_EQ(q.stream_depth(1), 1u);

  const auto rows = q.stream_stats();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].stream_id, 0u);
  EXPECT_EQ(rows[1].shed, 2u);   // Sequences 1 and 2, its own oldest.
  EXPECT_EQ(rows[0].stream_id, 1u);
  EXPECT_EQ(rows[0].shed, 0u);   // The bystander never pays.

  std::vector<ServeRequest> batch;
  q.pop_batch(batch, 16, std::chrono::microseconds(0));
  // Stream 0's survivors are its newest: 3, 4, 5.
  std::vector<std::uint64_t> stream0;
  for (const ServeRequest& r : batch)
    if (r.stream_id == 0) stream0.push_back(r.sequence);
  EXPECT_EQ(stream0, (std::vector<std::uint64_t>{3, 4, 5}));
}

// Whole-shard overload (possible when per-stream caps sum past the
// shard capacity): the DEEPEST stream sheds, not the newcomer.
TEST(ShardQueue, ShardAtCapacityShedsFromDeepestStream) {
  ShardQueue q(config(6, 5, 4));
  for (std::uint64_t s = 1; s <= 5; ++s) q.push(request(0, s));
  q.push(request(1, 100));
  // Shard full (6 resident).  Stream 2's arrival must evict from
  // stream 0 (depth 5), not from stream 1 (depth 1) or itself.
  q.push(request(2, 200));

  EXPECT_EQ(q.depth(), 6u);
  EXPECT_EQ(q.stream_depth(0), 4u);
  EXPECT_EQ(q.stream_depth(1), 1u);
  EXPECT_EQ(q.stream_depth(2), 1u);
  const auto rows = q.stream_stats();
  for (const auto& row : rows) {
    if (row.stream_id == 0) EXPECT_EQ(row.shed, 1u);
    else EXPECT_EQ(row.shed, 0u);
  }
}

TEST(ShardQueue, ZeroWaitPopOnEmptyOpenShardReturnsImmediately) {
  ShardQueue q(config(16, 16, 4));
  std::vector<ServeRequest> batch;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(q.pop_batch(batch, 16, std::chrono::microseconds(0)), 0u);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  EXPECT_LT(elapsed_ms, 100.0);
  EXPECT_FALSE(q.drained());  // Open: 0 here does NOT mean shutdown.
}

TEST(ShardQueue, CloseRefusesProducersAndDrainsConsumer) {
  ShardQueue q(config(16, 16, 4));
  q.push(request(0, 1));
  q.push(request(0, 2));
  q.close();

  EXPECT_FALSE(q.push(request(0, 3)));
  EXPECT_EQ(q.stats().rejected, 1u);
  EXPECT_FALSE(q.drained());  // Still two resident.

  std::vector<ServeRequest> batch;
  EXPECT_EQ(q.pop_batch(batch, 16, std::chrono::microseconds(0)), 2u);
  EXPECT_TRUE(q.drained());
  EXPECT_EQ(q.pop_batch(batch, 16, std::chrono::microseconds(0)), 0u);
}

TEST(ShardQueue, BlockingPopWakesOnPush) {
  ShardQueue q(config(16, 16, 4));
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.push(request(3, 1));
  });
  std::vector<ServeRequest> batch;
  // Far longer than the producer's delay: the wake must come from the
  // push, not the timeout.
  const std::size_t n = q.pop_batch(batch, 16, std::chrono::seconds(10));
  producer.join();
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(batch[0].stream_id, 3u);
}

TEST(ShardQueue, RejectsInvalidConfig) {
  EXPECT_THROW(ShardQueue(config(0, 1, 1)), core::ContractViolation);
  EXPECT_THROW(ShardQueue(config(8, 0, 1)), core::ContractViolation);
  EXPECT_THROW(ShardQueue(config(8, 9, 1)), core::ContractViolation);
  EXPECT_THROW(ShardQueue(config(8, 8, 0)), core::ContractViolation);
}

// Conservation ledger under multi-producer contention with tiny caps:
// both shed paths (per-stream cap and whole-shard capacity) race the
// consumer's round-robin drain, and every request must still be
// accounted for.  Runs repeatedly under TSan with checked contracts
// in the static-analysis gate.
TEST(ShardQueue, MultiProducerLedgerStress) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 4000;
  constexpr std::uint32_t kStreams = 8;
  ShardQueue q(config(24, 4, 2));  // Tiny: both shed paths fire.

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const auto stream = static_cast<std::uint32_t>(i % kStreams);
        q.push(request(stream, static_cast<std::uint64_t>(p) * kPerProducer +
                                   i + 1));
      }
    });
  }

  std::atomic<std::uint64_t> delivered{0};
  std::thread consumer([&] {
    std::vector<ServeRequest> batch;
    for (;;) {
      batch.clear();
      const std::size_t n =
          q.pop_batch(batch, 16, std::chrono::microseconds(50));
      if (n > 0) {
        delivered.fetch_add(n, std::memory_order_relaxed);
      } else if (q.drained()) {
        break;
      }
    }
  });

  for (std::thread& t : producers) t.join();
  q.close();
  consumer.join();

  const ShardQueue::Stats stats = q.stats();
  EXPECT_EQ(stats.pushed, kProducers * kPerProducer);
  EXPECT_EQ(stats.resident, 0u);
  EXPECT_EQ(stats.popped, delivered.load());
  EXPECT_EQ(stats.pushed, stats.popped + stats.shed + stats.resident);

  // The per-stream rows must sum to the aggregate ledger.
  std::uint64_t pushed = 0, popped = 0, shed = 0;
  for (const auto& row : q.stream_stats()) {
    pushed += row.pushed;
    popped += row.popped;
    shed += row.shed;
  }
  EXPECT_EQ(pushed, stats.pushed);
  EXPECT_EQ(popped, stats.popped);
  EXPECT_EQ(shed, stats.shed);
}

}  // namespace
}  // namespace adapt::serve
