#include "serve/stream_router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/contract.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "serve/inference_server.hpp"
#include "serve/synthetic_models.hpp"

namespace adapt::serve {
namespace {

struct Event {
  recon::ComptonRing ring;
  double polar_deg = 0.0;
};

std::vector<Event> make_events(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<Event> events(n);
  for (Event& e : events) {
    e.ring = synthetic_ring(rng);
    e.polar_deg = rng.uniform(0.0, 90.0);
  }
  return events;
}

struct Outputs {
  std::uint8_t is_background = 0;
  double d_eta = 0.0;
  bool degraded = false;
  bool fallback = false;
};

// The acceptance criterion of the multi-stream layer: with one
// stream, one shard, and one worker, the router must be BIT-IDENTICAL
// to the single-stream InferenceServer on the same submit sequence.
// Batch splits may differ between the two runs (timing), but
// Models::infer_batch is bit-identical across splits (the PR4/PR6
// batch-equivalence guarantee), so per-sequence outputs must match
// exactly.  Degrade is off and the queues are deep enough to never
// shed, so no timing-dependent policy can fork the outputs.
TEST(StreamRouter, SingleStreamBitIdenticalToInferenceServer) {
  constexpr std::size_t kEvents = 3000;
  auto background = synthetic_background_net_int8(0xB6);
  auto deta = synthetic_deta_net(0xDE);
  const pipeline::Models models{&background, &deta};
  const std::vector<Event> events = make_events(kEvents, 99);

  std::map<std::uint64_t, Outputs> server_out;
  {
    ServeConfig sc;
    sc.queue_capacity = 32768;
    sc.max_batch = 64;
    sc.flush_deadline = std::chrono::microseconds(200);
    sc.degrade_when_saturated = false;
    InferenceServer server(models, sc,
                           [&](std::span<const ServeResult> results) {
                             for (const ServeResult& r : results)
                               server_out[r.sequence] = {r.is_background,
                                                         r.d_eta, r.degraded,
                                                         r.fallback};
                           });
    server.start();
    for (const Event& e : events) server.submit(e.ring, e.polar_deg);
    server.stop();
    EXPECT_EQ(server.stats().shed, 0u);
  }

  std::map<std::uint64_t, Outputs> router_out;
  {
    RouterConfig rc;
    rc.num_shards = 1;
    rc.num_workers = 1;
    rc.shard_capacity = 32768;
    rc.per_stream_cap = 32768;
    rc.max_batch = 64;
    rc.flush_deadline = std::chrono::microseconds(200);
    rc.degrade_when_saturated = false;
    StreamRouter router(models, rc,
                        [&](std::span<const ServeResult> results) {
                          for (const ServeResult& r : results)
                            router_out[r.sequence] = {r.is_background,
                                                      r.d_eta, r.degraded,
                                                      r.fallback};
                        });
    router.start();
    for (const Event& e : events) router.submit(0, e.ring, e.polar_deg);
    router.stop();
    const auto stats = router.stats();
    EXPECT_EQ(stats.shed, 0u);
    EXPECT_EQ(stats.mixed_batches, 0u);
    EXPECT_EQ(stats.streams, 1u);
  }

  ASSERT_EQ(server_out.size(), kEvents);
  ASSERT_EQ(router_out.size(), kEvents);
  for (std::uint64_t seq = 1; seq <= kEvents; ++seq) {
    const Outputs& s = server_out[seq];
    const Outputs& r = router_out[seq];
    EXPECT_EQ(s.is_background, r.is_background) << "sequence " << seq;
    EXPECT_EQ(s.d_eta, r.d_eta) << "sequence " << seq;  // Bit-exact.
    EXPECT_EQ(s.degraded, r.degraded) << "sequence " << seq;
    EXPECT_EQ(s.fallback, r.fallback) << "sequence " << seq;
  }
}

// Satellite regression: skewed arrivals.  One hot stream floods while
// nine trickle streams submit modestly, all on ONE shard so the DRR
// filler and the per-stream caps do all the work.  The engine is
// gated until every submit has landed, which makes the outcome
// deterministic: the hot stream MUST overflow its cap while the
// worker is parked, and the trickle streams (under their cap) must
// sail through untouched.
TEST(StreamRouter, SkewedArrivalsShedOnlyTheHotStream) {
  constexpr std::uint32_t kStreams = 10;
  constexpr std::uint32_t kHot = 0;
  constexpr std::uint64_t kHotEvents = 8000;
  constexpr std::uint64_t kTrickleEvents = 100;
  constexpr std::size_t kPerStreamCap = 256;

  RouterConfig rc;
  rc.num_shards = 1;
  rc.num_workers = 1;
  rc.shard_capacity = 4096;  // > 10 * 256: whole-shard shed never fires.
  rc.per_stream_cap = kPerStreamCap;
  rc.quantum = 8;
  rc.max_batch = 64;
  rc.degrade_when_saturated = false;

  // Per-stream delivery logs, filled on the single worker thread.
  std::vector<std::vector<std::uint64_t>> delivered(kStreams);
  StreamRouter router(pipeline::Models{}, rc,
                      [&](std::span<const ServeResult> results) {
                        for (const ServeResult& r : results)
                          delivered[r.stream_id].push_back(r.sequence);
                      });

  // Gate the first forward until all submissions are in.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  router.set_engine([opened](std::span<const recon::ComptonRing> rings,
                             std::span<const double>, bool) {
    opened.wait();
    BatchOutputs out;
    out.is_background.assign(rings.size(), 0);
    out.d_eta.assign(rings.size(), 0.1);
    return out;
  });
  router.start();

  // Interleave: trickle first so every stream is registered in the
  // shard's round-robin order before the flood starts.
  for (std::uint32_t k = 1; k < kStreams; ++k) {
    for (std::uint64_t i = 0; i < kTrickleEvents; ++i) {
      core::Rng rng(k * 1000 + i);
      router.submit(k, synthetic_ring(rng), 30.0);
    }
  }
  {
    core::Rng rng(7);
    for (std::uint64_t i = 0; i < kHotEvents; ++i)
      router.submit(kHot, synthetic_ring(rng), 30.0);
  }
  gate.set_value();
  router.stop();

  const auto rows = router.stream_stats();
  ASSERT_EQ(rows.size(), kStreams);
  std::uint64_t total_shed = 0;
  std::uint64_t hot_shed = 0;
  for (const auto& row : rows) {
    EXPECT_EQ(row.resident, 0u);  // stop() drains.
    EXPECT_EQ(row.submitted, row.processed + row.shed);
    total_shed += row.shed;
    if (row.stream_id == kHot) {
      hot_shed = row.shed;
      EXPECT_GT(row.shed, 0u);  // The flood pays.
      // The worker was parked for (almost all of) the flood: the hot
      // stream cannot have delivered much more than its resident cap.
      EXPECT_LE(row.processed, kPerStreamCap + rc.max_batch);
    } else {
      // Trickle streams: under their cap, NOTHING shed, everything
      // delivered.
      EXPECT_EQ(row.shed, 0u);
      EXPECT_EQ(row.processed, kTrickleEvents);
    }
  }
  // The hot stream absorbs ALL of the shedding.
  EXPECT_EQ(total_shed, hot_shed);

  // Per-stream delivery order is submit order, for every stream, even
  // though batches mixed streams.
  for (std::uint32_t k = 0; k < kStreams; ++k) {
    EXPECT_TRUE(std::is_sorted(delivered[k].begin(), delivered[k].end()))
        << "stream " << k;
  }
  EXPECT_GT(router.stats().mixed_batches, 0u);
}

// Streams spread across shards and workers: per-stream results still
// arrive in submit order, and the per-stream ledger closes (submitted
// == processed when nothing sheds).
TEST(StreamRouter, MultiShardPreservesPerStreamOrder) {
  constexpr std::uint32_t kStreams = 8;
  constexpr std::uint64_t kPerStream = 500;

  RouterConfig rc;
  rc.num_shards = 4;
  rc.num_workers = 2;
  rc.shard_capacity = 8192;
  rc.per_stream_cap = 4096;
  rc.max_batch = 32;

  std::mutex mu;
  std::vector<std::vector<std::uint64_t>> delivered(kStreams);
  StreamRouter router(pipeline::Models{}, rc,
                      [&](std::span<const ServeResult> results) {
                        // Two workers share this sink; same-stream
                        // calls are serialized but cross-stream calls
                        // race, so the shared structure locks.
                        std::lock_guard<std::mutex> lock(mu);
                        for (const ServeResult& r : results)
                          delivered[r.stream_id].push_back(r.sequence);
                      });
  router.start();
  std::vector<std::thread> producers;
  for (std::uint32_t k = 0; k < kStreams; ++k) {
    producers.emplace_back([&router, k] {
      core::Rng rng(k);
      for (std::uint64_t i = 0; i < kPerStream; ++i)
        router.submit(k, synthetic_ring(rng), 45.0);
    });
  }
  for (std::thread& t : producers) t.join();
  router.stop();

  const auto stats = router.stats();
  EXPECT_EQ(stats.processed, kStreams * kPerStream);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.streams, kStreams);
  for (std::uint32_t k = 0; k < kStreams; ++k) {
    ASSERT_EQ(delivered[k].size(), kPerStream) << "stream " << k;
    EXPECT_TRUE(std::is_sorted(delivered[k].begin(), delivered[k].end()))
        << "stream " << k;
  }
}

// Per-stream localizers are independent: a stream fed a coherent
// burst alerts; a stream fed a handful of incoherent rings does not.
TEST(StreamRouter, PerStreamLocalizersAlertIndependently) {
  RouterConfig rc;
  rc.num_shards = 1;
  rc.num_workers = 1;
  rc.shard_capacity = 8192;
  rc.per_stream_cap = 8192;
  rc.localize = true;
  rc.localizer_template.localizer.resolution_deg = 2.0;
  rc.localizer_template.alert_radius_deg = 20.0;  // Generous threshold.
  rc.localizer_template.check_every = 32;
  rc.localizer_template.use_served_d_eta = false;

  std::mutex mu;
  std::vector<std::uint32_t> alerted;
  StreamRouter router(pipeline::Models{}, rc,
                      [](std::span<const ServeResult>) {});
  router.set_alert_callback(
      [&](std::uint32_t stream_id, const AlertInfo& info) {
        std::lock_guard<std::mutex> lock(mu);
        alerted.push_back(stream_id);
        EXPECT_GT(info.n_rings, 0u);
      });
  router.start();

  // Stream 0: a synthetic burst — rings whose cones agree on one
  // source direction.
  {
    core::Rng rng(11);
    const core::Vec3 source =
        core::from_spherical(core::deg_to_rad(40.0), core::deg_to_rad(60.0));
    for (int i = 0; i < 600; ++i) {
      recon::ComptonRing ring = synthetic_ring(rng);
      ring.axis = rng.isotropic_direction();
      ring.d_eta = 0.05;
      ring.eta = std::clamp(ring.axis.dot(source) + rng.normal(0.0, 0.05),
                            -1.0, 1.0);
      router.submit(0, ring, 40.0);
    }
  }
  // Stream 1: too few rings to even reach the first radius check.
  {
    core::Rng rng(12);
    for (int i = 0; i < 4; ++i) router.submit(1, synthetic_ring(rng), 40.0);
  }
  router.stop();

  const auto s0 = router.localizer_status(0);
  const auto s1 = router.localizer_status(1);
  ASSERT_TRUE(s0.has_value());
  ASSERT_TRUE(s1.has_value());
  EXPECT_TRUE(s0->alert_fired);
  EXPECT_FALSE(s1->alert_fired);
  EXPECT_EQ(alerted, (std::vector<std::uint32_t>{0}));
  EXPECT_FALSE(router.localizer_status(99).has_value());  // Never seen.
}

TEST(StreamRouter, SubmitAfterStopIsRejected) {
  RouterConfig rc;
  rc.num_shards = 2;
  rc.num_workers = 1;
  StreamRouter router(pipeline::Models{}, rc,
                      [](std::span<const ServeResult>) {});
  router.start();
  core::Rng rng(1);
  const recon::ComptonRing ring = synthetic_ring(rng);
  EXPECT_GT(router.submit(5, ring, 10.0), 0u);
  router.stop();
  EXPECT_EQ(router.submit(5, ring, 10.0), 0u);
  EXPECT_EQ(router.stats().rejected, 1u);
}

TEST(StreamRouter, RejectsInvalidTopology) {
  const auto sink = [](std::span<const ServeResult>) {};
  RouterConfig more_workers_than_shards;
  more_workers_than_shards.num_shards = 2;
  more_workers_than_shards.num_workers = 4;
  EXPECT_THROW(StreamRouter(pipeline::Models{}, more_workers_than_shards,
                            sink),
               core::ContractViolation);
  RouterConfig zero_shards;
  zero_shards.num_shards = 0;
  EXPECT_THROW(StreamRouter(pipeline::Models{}, zero_shards, sink),
               core::ContractViolation);
  RouterConfig batch_over_capacity;
  batch_over_capacity.shard_capacity = 32;
  batch_over_capacity.per_stream_cap = 32;
  batch_over_capacity.max_batch = 64;
  EXPECT_THROW(StreamRouter(pipeline::Models{}, batch_over_capacity, sink),
               core::ContractViolation);
}

}  // namespace
}  // namespace adapt::serve
