#include "serve/inference_server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/synthetic_models.hpp"

namespace adapt::serve {
namespace {

struct Collected {
  std::mutex mutex;
  std::vector<ServeResult> results;

  ResultSink sink() {
    return [this](std::span<const ServeResult> batch) {
      std::lock_guard<std::mutex> lock(mutex);
      results.insert(results.end(), batch.begin(), batch.end());
    };
  }
};

TEST(InferenceServer, ProcessesEverySubmittedEvent) {
  auto background = synthetic_background_net(11);
  auto deta = synthetic_deta_net(12);
  const pipeline::Models models{&background, &deta};

  ServeConfig config;
  config.queue_capacity = 1024;
  config.max_batch = 16;
  config.flush_deadline = std::chrono::microseconds(200);

  Collected collected;
  InferenceServer server(models, config, collected.sink());
  server.start();

  core::Rng rng(3);
  constexpr std::size_t kEvents = 300;
  for (std::size_t i = 0; i < kEvents; ++i) {
    const auto seq = server.submit(synthetic_ring(rng), rng.uniform(0.0, 90.0));
    EXPECT_EQ(seq, i + 1);
  }
  server.stop();

  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, kEvents);
  EXPECT_EQ(stats.processed, kEvents);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_GE(stats.batches, kEvents / config.max_batch);

  ASSERT_EQ(collected.results.size(), kEvents);
  std::vector<std::uint64_t> seqs;
  for (const ServeResult& r : collected.results) {
    seqs.push_back(r.sequence);
    EXPECT_FALSE(r.degraded);
    EXPECT_GE(r.d_eta, 1e-4);
    EXPECT_LE(r.d_eta, 2.0);
    EXPECT_GE(r.latency_ms, 0.0);
  }
  std::sort(seqs.begin(), seqs.end());
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i + 1);
}

TEST(InferenceServer, SubmitAfterStopIsRejected) {
  Collected collected;
  InferenceServer server(pipeline::Models{}, ServeConfig{}, collected.sink());
  server.start();
  server.stop();
  core::Rng rng(5);
  EXPECT_EQ(server.submit(synthetic_ring(rng), 10.0), 0u);
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(InferenceServer, NullModelsServeAnalyticPassthrough) {
  ServeConfig config;
  config.d_eta_floor = 0.01;
  config.d_eta_cap = 0.5;
  Collected collected;
  InferenceServer server(pipeline::Models{}, config, collected.sink());
  server.start();

  core::Rng rng(7);
  std::vector<recon::ComptonRing> rings;
  for (int i = 0; i < 20; ++i) rings.push_back(synthetic_ring(rng));
  for (const auto& ring : rings) server.submit(ring, 45.0);
  server.stop();

  ASSERT_EQ(collected.results.size(), rings.size());
  std::sort(collected.results.begin(), collected.results.end(),
            [](const ServeResult& a, const ServeResult& b) {
              return a.sequence < b.sequence;
            });
  for (std::size_t i = 0; i < rings.size(); ++i) {
    EXPECT_EQ(collected.results[i].is_background, 0);
    EXPECT_EQ(collected.results[i].d_eta,
              std::clamp(rings[i].d_eta, config.d_eta_floor, config.d_eta_cap));
  }
}

TEST(InferenceServer, DegradesToAnalyticDEtaUnderBacklog) {
  auto background = synthetic_background_net(21);
  auto deta = synthetic_deta_net(22);
  const pipeline::Models models{&background, &deta};

  // Watermark so low that any leftover backlog after a pop degrades
  // the next batch; the backlog is guaranteed by submitting everything
  // before start().
  ServeConfig config;
  config.queue_capacity = 256;
  config.max_batch = 8;
  config.flush_deadline = std::chrono::microseconds(0);
  config.degrade_watermark = 0.01;

  Collected collected;
  InferenceServer server(models, config, collected.sink());
  core::Rng rng(9);
  std::vector<recon::ComptonRing> rings;
  for (std::size_t i = 0; i < 64; ++i) {
    rings.push_back(synthetic_ring(rng));
    server.submit(rings.back(), 30.0);
  }
  server.start();
  server.stop();

  const auto stats = server.stats();
  EXPECT_EQ(stats.processed, 64u);
  EXPECT_GT(stats.degraded, 0u);

  // Degraded results carry the analytic clamp, not a network output.
  std::sort(collected.results.begin(), collected.results.end(),
            [](const ServeResult& a, const ServeResult& b) {
              return a.sequence < b.sequence;
            });
  std::size_t degraded_seen = 0;
  for (std::size_t i = 0; i < rings.size(); ++i) {
    if (!collected.results[i].degraded) continue;
    ++degraded_seen;
    EXPECT_EQ(collected.results[i].d_eta,
              std::clamp(rings[i].d_eta, config.d_eta_floor, config.d_eta_cap));
  }
  EXPECT_EQ(degraded_seen, stats.degraded);
}

TEST(InferenceServer, DegradeCanBeDisabled) {
  auto background = synthetic_background_net(21);
  auto deta = synthetic_deta_net(22);
  ServeConfig config;
  config.queue_capacity = 256;
  config.max_batch = 8;
  config.flush_deadline = std::chrono::microseconds(0);
  config.degrade_watermark = 0.01;
  config.degrade_when_saturated = false;

  Collected collected;
  InferenceServer server(pipeline::Models{&background, &deta}, config,
                         collected.sink());
  core::Rng rng(9);
  for (std::size_t i = 0; i < 64; ++i)
    server.submit(synthetic_ring(rng), 30.0);
  server.start();
  server.stop();
  EXPECT_EQ(server.stats().degraded, 0u);
}

TEST(InferenceServer, ShedsOldestWhenSaturated) {
  // Tiny queue, everything enqueued before the worker starts: all but
  // the newest `queue_capacity` requests must be shed, none lost
  // silently.
  ServeConfig config;
  config.queue_capacity = 8;
  config.max_batch = 8;
  config.degrade_watermark = 1.0;

  Collected collected;
  InferenceServer server(pipeline::Models{}, config, collected.sink());
  core::Rng rng(13);
  constexpr std::uint64_t kEvents = 40;
  for (std::uint64_t i = 0; i < kEvents; ++i)
    server.submit(synthetic_ring(rng), 10.0);
  server.start();
  server.stop();

  const auto stats = server.stats();
  EXPECT_EQ(stats.shed, kEvents - config.queue_capacity);
  EXPECT_EQ(stats.processed, config.queue_capacity);
  // The survivors are the NEWEST sequences.
  ASSERT_EQ(collected.results.size(), config.queue_capacity);
  for (const ServeResult& r : collected.results)
    EXPECT_GT(r.sequence, kEvents - config.queue_capacity);
}

TEST(InferenceServer, ConcurrentProducersAllAccounted) {
  auto background = synthetic_background_net_int8(31);
  ServeConfig config;
  config.queue_capacity = 4096;
  config.max_batch = 32;

  Collected collected;
  InferenceServer server(pipeline::Models{&background, nullptr}, config,
                         collected.sink());
  server.start();

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 200;
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&server, p] {
      core::Rng rng(100 + p);
      for (std::size_t i = 0; i < kPerProducer; ++i)
        server.submit(synthetic_ring(rng), rng.uniform(0.0, 90.0));
    });
  }
  for (std::thread& t : producers) t.join();
  server.stop();

  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.processed + stats.shed, stats.submitted);
  EXPECT_EQ(collected.results.size(), stats.processed);
}

}  // namespace
}  // namespace adapt::serve
