#include "serve/flood.hpp"

#include <gtest/gtest.h>

#include <initializer_list>
#include <vector>

namespace adapt::serve {
namespace {

core::CliArgs make(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"adaptctl", "cmd"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return core::CliArgs(static_cast<int>(argv.size()), argv.data(), 2);
}

TEST(JainFairness, PerfectWhenEveryStreamDeliversItsShare) {
  std::vector<StreamFloodReport> streams(4);
  for (auto& s : streams) {
    s.submitted = 100;
    s.processed = 60;  // Equal RATIO is what counts, not equal volume.
  }
  EXPECT_DOUBLE_EQ(jain_fairness(streams), 1.0);
}

TEST(JainFairness, MonopolyScoresOneOverN) {
  std::vector<StreamFloodReport> streams(4);
  for (auto& s : streams) s.submitted = 100;
  streams[0].processed = 100;  // One stream gets everything...
  EXPECT_DOUBLE_EQ(jain_fairness(streams), 0.25);  // ...score 1/N.
}

TEST(JainFairness, SkipsStreamsWithNoOfferedLoad) {
  std::vector<StreamFloodReport> streams(3);
  streams[0].submitted = 100;
  streams[0].processed = 50;
  streams[1].submitted = 200;
  streams[1].processed = 100;
  streams[2].submitted = 0;  // Never offered: not a fairness datum.
  EXPECT_DOUBLE_EQ(jain_fairness(streams), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
}

// End-to-end flood with null models (analytic passthrough — fast and
// deterministic in its accounting): the report's books must balance.
TEST(FloodHarness, ReportAccountingBalances) {
  FloodConfig cfg;
  cfg.streams = 6;
  cfg.events = 5000;
  cfg.skew = 1.0;
  cfg.producers = 2;
  cfg.shards = 3;
  cfg.workers = 2;
  // Deep enough that nothing sheds: every submitted event delivers.
  cfg.shard_capacity = 8192;
  cfg.per_stream_cap = 4096;
  cfg.seed = 7;

  const FloodReport report = measure_flood(pipeline::Models{}, cfg);
  EXPECT_EQ(report.submitted, cfg.events);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.processed, cfg.events);
  EXPECT_GT(report.events_per_s, 0.0);
  EXPECT_DOUBLE_EQ(report.fairness, 1.0);  // Nothing shed anywhere.
  EXPECT_GE(report.p99_latency_ms, report.p50_latency_ms);

  ASSERT_EQ(report.streams.size(), cfg.streams);
  std::uint64_t submitted = 0, processed = 0, shed = 0;
  for (const auto& s : report.streams) {
    submitted += s.submitted;
    processed += s.processed;
    shed += s.shed;
    EXPECT_EQ(s.submitted, s.processed + s.shed);
  }
  EXPECT_EQ(submitted, report.submitted);
  EXPECT_EQ(processed, report.processed);
  EXPECT_EQ(shed, report.shed);
}

// Zipf skew must actually skew: with skew 2 the rank-0 stream carries
// far more than the tail stream; with skew 0 the load is near-uniform.
TEST(FloodHarness, SkewShapesTheOfferedLoad) {
  FloodConfig cfg;
  cfg.streams = 8;
  cfg.events = 8000;
  cfg.producers = 1;
  cfg.shards = 2;
  cfg.workers = 1;
  cfg.shard_capacity = 16384;
  cfg.per_stream_cap = 8192;

  cfg.skew = 2.0;
  const FloodReport skewed = measure_flood(pipeline::Models{}, cfg);
  EXPECT_GT(skewed.streams.front().submitted,
            10 * skewed.streams.back().submitted);

  cfg.skew = 0.0;
  const FloodReport uniform = measure_flood(pipeline::Models{}, cfg);
  const double expect_per_stream =
      static_cast<double>(cfg.events) / static_cast<double>(cfg.streams);
  for (const auto& s : uniform.streams) {
    EXPECT_GT(static_cast<double>(s.submitted), 0.6 * expect_per_stream);
    EXPECT_LT(static_cast<double>(s.submitted), 1.4 * expect_per_stream);
  }
}

// --- CLI validation (satellite: malformed flags die at the CLI
// boundary with CliError -> exit 2, not deep in the serve layer) ---

TEST(FloodCli, ParsesValidFlags) {
  const FloodConfig cfg = flood_config_from_args(
      make({"--streams", "50", "--events", "10000", "--skew", "1.5",
            "--shards", "4", "--workers", "2", "--batch", "32",
            "--deadline-us", "0", "--no-degrade"}));
  EXPECT_EQ(cfg.streams, 50u);
  EXPECT_EQ(cfg.events, 10000u);
  EXPECT_DOUBLE_EQ(cfg.skew, 1.5);
  EXPECT_EQ(cfg.shards, 4u);
  EXPECT_EQ(cfg.workers, 2u);
  EXPECT_EQ(cfg.max_batch, 32u);
  // Zero deadline is legal now: "flush whatever is visible".
  EXPECT_EQ(cfg.flush_deadline.count(), 0);
  EXPECT_FALSE(cfg.degrade_when_saturated);
}

TEST(FloodCli, RejectsOutOfRangeFlags) {
  EXPECT_THROW(flood_config_from_args(make({"--streams", "0"})),
               core::CliError);
  EXPECT_THROW(flood_config_from_args(make({"--streams", "2000000"})),
               core::CliError);
  EXPECT_THROW(flood_config_from_args(make({"--skew", "-1"})),
               core::CliError);
  EXPECT_THROW(flood_config_from_args(make({"--skew", "banana"})),
               core::CliError);
  EXPECT_THROW(
      flood_config_from_args(make({"--workers", "8", "--shards", "2"})),
      core::CliError);
  EXPECT_THROW(flood_config_from_args(
                   make({"--stream-cap", "9000", "--shard-cap", "4096"})),
               core::CliError);
  EXPECT_THROW(flood_config_from_args(
                   make({"--batch", "9000", "--shard-cap", "4096"})),
               core::CliError);
  EXPECT_THROW(flood_config_from_args(make({"--deadline-us", "-5"})),
               core::CliError);
  EXPECT_THROW(flood_config_from_args(make({"--watermark", "0"})),
               core::CliError);
  EXPECT_THROW(flood_config_from_args(make({"--alert-deg", "-1"})),
               core::CliError);
  EXPECT_THROW(flood_config_from_args(make({"--alert-content", "1.0"})),
               core::CliError);
  EXPECT_THROW(
      flood_config_from_args(make({"--background-fraction", "1.5"})),
      core::CliError);
}

TEST(ServeBenchCli, ParsesValidFlags) {
  const ThroughputConfig cfg = throughput_config_from_args(
      make({"--events", "1000", "--batch", "16", "--queue", "64",
            "--deadline-us", "0", "--alert-deg", "5", "--alert-content",
            "0.9", "--background-fraction", "0"}));
  EXPECT_EQ(cfg.events, 1000u);
  EXPECT_EQ(cfg.max_batch, 16u);
  EXPECT_EQ(cfg.queue_capacity, 64u);
  EXPECT_EQ(cfg.flush_deadline.count(), 0);
  EXPECT_DOUBLE_EQ(cfg.alert_deg, 5.0);
  EXPECT_DOUBLE_EQ(cfg.alert_content, 0.9);
  EXPECT_DOUBLE_EQ(cfg.background_fraction, 0.0);
}

TEST(ServeBenchCli, RejectsOutOfRangeFlags) {
  // Formerly an ADAPT_REQUIRE abort (exit 1) inside InferenceServer;
  // now a CliError (exit 2) before any serving machinery spins up.
  EXPECT_THROW(
      throughput_config_from_args(make({"--batch", "100", "--queue", "50"})),
      core::CliError);
  // Formerly silently disabled alerting.
  EXPECT_THROW(throughput_config_from_args(make({"--alert-deg", "-3"})),
               core::CliError);
  // Formerly tripped contracts (or nonsense) deep in the localizer.
  EXPECT_THROW(throughput_config_from_args(make({"--alert-content", "1.5"})),
               core::CliError);
  EXPECT_THROW(
      throughput_config_from_args(make({"--background-fraction", "-0.1"})),
      core::CliError);
  EXPECT_THROW(throughput_config_from_args(make({"--deadline-us", "0.5"})),
               core::CliError);
  EXPECT_THROW(throughput_config_from_args(make({"--events", "none"})),
               core::CliError);
}

}  // namespace
}  // namespace adapt::serve
