#include "serve/stream_localizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "serve/supervisor.hpp"
#include "serve/synthetic_models.hpp"

namespace adapt::serve {
namespace {

struct Batch {
  std::vector<ServeRequest> requests;
  std::vector<ServeResult> results;
};

/// One observed batch of source-consistent cones, sequences continuing
/// from `next_sequence`.
Batch make_batch(core::Rng& rng, const core::Vec3& source, std::size_t n,
                 double d_eta, std::uint64_t& next_sequence) {
  Batch b;
  for (std::size_t i = 0; i < n; ++i) {
    ServeRequest q;
    q.ring = synthetic_ring(rng);
    q.ring.axis = rng.isotropic_direction();
    q.ring.eta = std::clamp(
        q.ring.axis.dot(source) + rng.normal(0.0, d_eta), -1.0, 1.0);
    q.ring.d_eta = d_eta;
    q.sequence = next_sequence;
    ServeResult r;
    r.sequence = next_sequence++;
    r.d_eta = d_eta;
    b.requests.push_back(q);
    b.results.push_back(r);
  }
  return b;
}

StreamLocalizerConfig analytic_config() {
  StreamLocalizerConfig cfg;
  cfg.use_served_d_eta = false;
  cfg.check_every = 16;
  cfg.min_rings = 8;
  return cfg;
}

TEST(StreamLocalizer, AlertFiresExactlyOnce) {
  core::Rng rng(21);
  const core::Vec3 s = core::from_spherical(core::deg_to_rad(35.0),
                                            core::deg_to_rad(120.0));
  StreamLocalizerConfig cfg = analytic_config();
  cfg.alert_radius_deg = 5.0;
  int fired = 0;
  AlertInfo seen;
  StreamLocalizer loc(cfg, [&](const AlertInfo& info) {
    ++fired;
    seen = info;
  });

  std::uint64_t seq = 1;
  for (int batch = 0; batch < 8; ++batch) {
    const Batch b = make_batch(rng, s, 32, 0.05, seq);
    loc.observe(b.requests, b.results);
  }

  EXPECT_EQ(fired, 1);
  const StreamLocalizer::Status status = loc.status();
  EXPECT_TRUE(status.alert_fired);
  EXPECT_EQ(status.alert_rings, seen.n_rings);
  EXPECT_GT(seen.n_rings, 0u);
  EXPECT_LE(seen.radius_deg, cfg.alert_radius_deg);
  EXPECT_DOUBLE_EQ(seen.content, cfg.alert_content);
  // The posterior peak at the crossing points at the source.
  EXPECT_LT(core::rad_to_deg(core::angle_between(seen.direction, s)), 3.0);
  // Radius keeps being tracked after the alert.
  EXPECT_GE(status.radius_checks, 2u);
  EXPECT_GT(status.last_radius_deg, 0.0);
}

TEST(StreamLocalizer, NoAlertWhenDisabledButTrajectoryRecorded) {
  core::Rng rng(22);
  const core::Vec3 s = core::from_spherical(0.5, 1.0);
  StreamLocalizerConfig cfg = analytic_config();
  cfg.alert_radius_deg = 0.0;  // disabled
  int fired = 0;
  StreamLocalizer loc(cfg, [&](const AlertInfo&) { ++fired; });

  std::uint64_t seq = 1;
  for (int batch = 0; batch < 4; ++batch) {
    const Batch b = make_batch(rng, s, 32, 0.05, seq);
    loc.observe(b.requests, b.results);
  }

  EXPECT_EQ(fired, 0);
  const StreamLocalizer::Status status = loc.status();
  EXPECT_FALSE(status.alert_fired);
  EXPECT_GT(status.radius_checks, 0u);
  EXPECT_GT(status.last_radius_deg, 0.0);
  // The posterior is still queryable on demand.
  EXPECT_LT(core::rad_to_deg(core::angle_between(loc.peak(), s)), 3.0);
}

TEST(StreamLocalizer, BackgroundFlaggedRingsAreSkipped) {
  core::Rng rng(23);
  const core::Vec3 s = core::from_spherical(0.4, 0.2);
  StreamLocalizer loc(analytic_config());

  std::uint64_t seq = 1;
  Batch b = make_batch(rng, s, 16, 0.05, seq);
  for (std::size_t i = 0; i < b.results.size(); i += 2)
    b.results[i].is_background = 1;
  loc.observe(b.requests, b.results);

  const StreamLocalizer::Status status = loc.status();
  EXPECT_EQ(status.rings_accepted, 8u);
  EXPECT_EQ(status.rings_skipped_background, 8u);
}

TEST(StreamLocalizer, ServedDEtaOverridesRingWidth) {
  core::Rng rng(24);
  const core::Vec3 s = core::from_spherical(0.4, 0.2);
  StreamLocalizerConfig cfg = analytic_config();
  cfg.use_served_d_eta = true;

  StreamLocalizer loc(cfg);
  std::uint64_t seq = 1;
  Batch b = make_batch(rng, s, 8, 0.05, seq);
  // The rings themselves carry an unusable width; the *served* width
  // is valid.  With use_served_d_eta the accumulator must see the
  // served one and accept every ring.
  for (auto& q : b.requests) q.ring.d_eta = 0.0;
  loc.observe(b.requests, b.results);
  EXPECT_EQ(loc.status().rings_accepted, 8u);
  EXPECT_EQ(loc.status().rings_rejected, 0u);
}

TEST(StreamLocalizer, UnusableRingsCountedAsRejected) {
  core::Rng rng(25);
  const core::Vec3 s = core::from_spherical(0.4, 0.2);
  StreamLocalizer loc(analytic_config());  // analytic widths
  std::uint64_t seq = 1;
  Batch b = make_batch(rng, s, 4, 0.05, seq);
  b.requests[1].ring.d_eta = 0.0;
  b.requests[2].ring.d_eta = std::numeric_limits<double>::quiet_NaN();
  loc.observe(b.requests, b.results);
  const StreamLocalizer::Status status = loc.status();
  EXPECT_EQ(status.rings_accepted, 2u);
  EXPECT_EQ(status.rings_rejected, 2u);
}

TEST(StreamLocalizer, MismatchedSpansRejected) {
  core::Rng rng(26);
  StreamLocalizer loc(analytic_config());
  std::uint64_t seq = 1;
  Batch b = make_batch(rng, {0.0, 0.0, 1.0}, 2, 0.05, seq);
  const std::span<const ServeResult> truncated(b.results.data(), 1);
  EXPECT_THROW(loc.observe(b.requests, truncated), std::invalid_argument);
}

TEST(StreamLocalizer, ConfigValidated) {
  StreamLocalizerConfig bad = analytic_config();
  bad.alert_radius_deg = -1.0;
  EXPECT_THROW(StreamLocalizer{bad}, std::invalid_argument);
  bad = analytic_config();
  bad.alert_content = 1.0;
  EXPECT_THROW(StreamLocalizer{bad}, std::invalid_argument);
  bad = analytic_config();
  bad.check_every = 0;
  EXPECT_THROW(StreamLocalizer{bad}, std::invalid_argument);
}

TEST(StreamLocalizer, EndToEndThroughInferenceServer) {
  // Full path: producer -> queue -> micro-batch -> observer -> alert,
  // with real (synthetic-weight) models serving the batches.
  pipeline::BackgroundNet background = synthetic_background_net_int8(1);
  pipeline::DEtaNet deta = synthetic_deta_net(2);
  pipeline::Models models;
  models.background = &background;
  models.deta = &deta;

  StreamLocalizerConfig cfg = analytic_config();
  cfg.alert_radius_deg = 5.0;
  std::atomic<int> fired{0};
  StreamLocalizer loc(cfg, [&](const AlertInfo&) { ++fired; });

  ServeConfig sc;
  sc.queue_capacity = 4096;
  sc.max_batch = 32;
  InferenceServer server(models, sc, [](std::span<const ServeResult>) {});
  server.set_batch_observer(loc.observer());
  server.start();

  core::Rng rng(27);
  const core::Vec3 s = core::from_spherical(core::deg_to_rad(30.0), 1.0);
  for (int i = 0; i < 1500; ++i) {
    recon::ComptonRing ring = synthetic_ring(rng);
    ring.axis = rng.isotropic_direction();
    ring.eta = std::clamp(ring.axis.dot(s) + rng.normal(0.0, 0.05),
                          -1.0, 1.0);
    ring.d_eta = 0.05;
    server.submit(ring, 30.0);
  }
  server.stop();

  const StreamLocalizer::Status status = loc.status();
  const InferenceServer::Stats stats = server.stats();
  // Every processed event reached the observer exactly once.
  EXPECT_EQ(status.rings_accepted + status.rings_skipped_background +
                status.rings_rejected,
            stats.processed);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(status.alert_fired);
  EXPECT_LT(core::rad_to_deg(core::angle_between(loc.peak(), s)), 3.0);
}

TEST(StreamLocalizer, SupervisorFiltersInjectedDuplicates) {
  // An injected queue duplicate is served twice by the worker but must
  // reach the observer (and thus the sky accumulator) exactly once —
  // a double-counted ring would skew the posterior.
  pipeline::Models models;  // null models: analytic path, no veto
  SupervisorConfig cfg;
  cfg.serve.queue_capacity = 256;
  cfg.serve.max_batch = 8;
  cfg.watchdog_interval = std::chrono::milliseconds(0);

  std::atomic<std::uint64_t> delivered{0};
  Supervisor supervisor(models, cfg,
                        [&](std::span<const ServeResult> results) {
                          delivered += results.size();
                        });
  StreamLocalizer loc(analytic_config());
  supervisor.set_batch_observer(loc.observer());
  supervisor.set_queue_fault_hook([] { return QueueFault::kDuplicate; });
  supervisor.start();

  core::Rng rng(28);
  const core::Vec3 s = core::from_spherical(0.6, 0.3);
  const std::uint64_t n = 40;
  for (std::uint64_t i = 0; i < n; ++i) {
    recon::ComptonRing ring = synthetic_ring(rng);
    ring.axis = rng.isotropic_direction();
    ring.eta = std::clamp(ring.axis.dot(s) + rng.normal(0.0, 0.05),
                          -1.0, 1.0);
    ring.d_eta = 0.05;
    EXPECT_NE(supervisor.submit(ring, 30.0), 0u);
  }
  supervisor.stop();

  const SupervisorStats stats = supervisor.stats();
  EXPECT_EQ(stats.duplicates_suppressed, n);
  EXPECT_EQ(delivered.load(), n);
  // At-most-once into the localizer as well.
  EXPECT_EQ(loc.status().rings_accepted, n);
}

// Regression for an annotation-surfaced bug: observe() used to invoke
// on_alert_ while still holding mutex_, so an alert callback touching
// the localizer's own query API — the natural thing for an alert
// handler to do — self-deadlocked on the non-recursive mutex.  The
// callback now fires after the lock is released (the ADAPT_EXCLUDES
// contract on observe/status/credible_radius_deg/peak encodes exactly
// this), so a reentrant handler must complete and see the post-alert
// state.
TEST(StreamLocalizer, AlertCallbackMayReenterQueryApi) {
  core::Rng rng(29);
  const core::Vec3 s = core::from_spherical(0.7, -0.4);
  StreamLocalizerConfig cfg = analytic_config();
  cfg.alert_radius_deg = 5.0;
  int fired = 0;
  StreamLocalizer* self = nullptr;
  StreamLocalizer loc(cfg, [&](const AlertInfo& info) {
    ++fired;
    // Reentrant queries from inside the alert handler.
    const StreamLocalizer::Status status = self->status();
    EXPECT_TRUE(status.alert_fired);
    EXPECT_EQ(status.alert_rings, info.n_rings);
    EXPECT_GT(self->credible_radius_deg(cfg.alert_content), 0.0);
    EXPECT_LT(core::rad_to_deg(core::angle_between(self->peak(), s)), 5.0);
  });
  self = &loc;

  std::uint64_t seq = 1;
  for (int batch = 0; batch < 8; ++batch) {
    const Batch b = make_batch(rng, s, 32, 0.05, seq);
    loc.observe(b.requests, b.results);
  }
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace adapt::serve
