#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "core/contract.hpp"
#include "pipeline/models.hpp"
#include "serve/synthetic_models.hpp"

// The serving layer's core claim: one N-row batched forward is
// BIT-IDENTICAL to N single-ring forwards.  This holds because the
// GEMM kernels accumulate each output row in plain ascending-k order
// regardless of batch size, the INT8 engine is integer arithmetic
// throughout, and the feature/standardizer transforms are row-wise.
// Any "approximately equal" here would mean batching changes science
// results — these tests use exact equality on purpose.

namespace adapt::serve {
namespace {

struct Stream {
  std::vector<recon::ComptonRing> rings;
  std::vector<double> polar;
};

Stream make_stream(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  Stream s;
  for (std::size_t i = 0; i < n; ++i) {
    s.rings.push_back(synthetic_ring(rng));
    s.polar.push_back(rng.uniform(0.0, 90.0));
  }
  return s;
}

void expect_background_batch_matches_loop(pipeline::BackgroundNet& net,
                                          const Stream& s) {
  const auto batch_logits = net.logits_batch(s.rings, s.polar);
  const auto batch_cls = net.classify_batch(s.rings, s.polar);
  ASSERT_EQ(batch_logits.size(), s.rings.size());
  ASSERT_EQ(batch_cls.size(), s.rings.size());
  for (std::size_t i = 0; i < s.rings.size(); ++i) {
    const std::span<const recon::ComptonRing> one(&s.rings[i], 1);
    const auto loop_logit = net.logits(one, s.polar[i]);
    const auto loop_cls = net.classify(one, s.polar[i]);
    ASSERT_EQ(loop_logit.size(), 1u);
    // Bitwise float equality, deliberately.
    EXPECT_EQ(batch_logits[i], loop_logit[0]) << "ring " << i;
    EXPECT_EQ(batch_cls[i], loop_cls[0]) << "ring " << i;
  }
}

void expect_deta_batch_matches_loop(pipeline::DEtaNet& net, const Stream& s) {
  const auto batch = net.predict_batch(s.rings, s.polar);
  ASSERT_EQ(batch.size(), s.rings.size());
  for (std::size_t i = 0; i < s.rings.size(); ++i) {
    const std::span<const recon::ComptonRing> one(&s.rings[i], 1);
    const auto loop = net.predict(one, s.polar[i]);
    ASSERT_EQ(loop.size(), 1u);
    EXPECT_EQ(batch[i], loop[0]) << "ring " << i;
  }
}

TEST(BatchEquivalence, FloatBackgroundNetBitIdentical) {
  auto net = synthetic_background_net(101);
  expect_background_batch_matches_loop(net, make_stream(33, 1));
}

TEST(BatchEquivalence, Int8BackgroundNetBitIdentical) {
  auto net = synthetic_background_net_int8(102);
  expect_background_batch_matches_loop(net, make_stream(33, 2));
}

TEST(BatchEquivalence, DEtaNetBitIdentical) {
  auto net = synthetic_deta_net(103);
  expect_deta_batch_matches_loop(net, make_stream(33, 3));
}

TEST(BatchEquivalence, SingleRingBatch) {
  auto background = synthetic_background_net(104);
  auto deta = synthetic_deta_net(105);
  const Stream s = make_stream(1, 4);
  expect_background_batch_matches_loop(background, s);
  expect_deta_batch_matches_loop(deta, s);
}

TEST(BatchEquivalence, EmptyBatch) {
  auto background = synthetic_background_net(106);
  auto deta = synthetic_deta_net(107);
  EXPECT_TRUE(background.logits_batch({}, {}).empty());
  EXPECT_TRUE(background.classify_batch({}, {}).empty());
  EXPECT_TRUE(deta.predict_batch({}, {}).empty());
}

TEST(BatchEquivalence, ModelsBundleMatchesDirectCalls) {
  auto background = synthetic_background_net(108);
  auto deta = synthetic_deta_net(109);
  const pipeline::Models models{&background, &deta};
  const Stream s = make_stream(17, 5);

  EXPECT_EQ(models.classify_background_batch(s.rings, s.polar),
            background.classify_batch(s.rings, s.polar));
  EXPECT_EQ(models.predict_deta_batch(s.rings, s.polar),
            deta.predict_batch(s.rings, s.polar));
}

TEST(BatchEquivalence, NullModelsFallBackToAnalytic) {
  const pipeline::Models models{};
  const Stream s = make_stream(9, 6);
  const auto cls = models.classify_background_batch(s.rings, s.polar);
  for (const auto c : cls) EXPECT_EQ(c, 0);
  const auto d = models.predict_deta_batch(s.rings, s.polar, 0.01, 0.3);
  ASSERT_EQ(d.size(), s.rings.size());
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_EQ(d[i], std::clamp(s.rings[i].d_eta, 0.01, 0.3));
}

TEST(BatchEquivalence, MismatchedPolarSpanRejected) {
  auto net = synthetic_background_net(110);
  const Stream s = make_stream(4, 7);
  const std::vector<double> short_polar(3, 10.0);
  EXPECT_THROW(net.logits_batch(s.rings, short_polar),
               core::ContractViolation);
}

}  // namespace
}  // namespace adapt::serve
