#include "serve/synthetic_models.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace adapt::serve {
namespace {

TEST(SyntheticModels, RingsAreFiniteAndPlausible) {
  core::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const recon::ComptonRing ring = synthetic_ring(rng);
    EXPECT_TRUE(std::isfinite(ring.eta));
    EXPECT_GE(ring.eta, -1.0);
    EXPECT_LE(ring.eta, 1.0);
    EXPECT_GT(ring.d_eta, 0.0);
    EXPECT_GT(ring.e_total, 0.0);
    EXPECT_NEAR(ring.axis.norm(), 1.0, 1e-9);
    EXPECT_GE(ring.n_hits, 2);
  }
}

TEST(SyntheticModels, SameSeedSameOutputs) {
  core::Rng ring_rng(5);
  std::vector<recon::ComptonRing> rings;
  std::vector<double> polar;
  for (int i = 0; i < 8; ++i) {
    rings.push_back(synthetic_ring(ring_rng));
    polar.push_back(ring_rng.uniform(0.0, 90.0));
  }

  auto a = synthetic_background_net(42);
  auto b = synthetic_background_net(42);
  EXPECT_EQ(a.logits_batch(rings, polar), b.logits_batch(rings, polar));

  auto qa = synthetic_background_net_int8(42);
  auto qb = synthetic_background_net_int8(42);
  EXPECT_EQ(qa.logits_batch(rings, polar), qb.logits_batch(rings, polar));
  EXPECT_TRUE(qa.quantized());

  auto da = synthetic_deta_net(42);
  auto db = synthetic_deta_net(42);
  EXPECT_EQ(da.predict_batch(rings, polar), db.predict_batch(rings, polar));
}

TEST(SyntheticModels, DifferentSeedsDiffer) {
  core::Rng ring_rng(6);
  std::vector<recon::ComptonRing> rings;
  std::vector<double> polar;
  for (int i = 0; i < 8; ++i) {
    rings.push_back(synthetic_ring(ring_rng));
    polar.push_back(ring_rng.uniform(0.0, 90.0));
  }
  auto a = synthetic_background_net(1);
  auto b = synthetic_background_net(2);
  EXPECT_NE(a.logits_batch(rings, polar), b.logits_batch(rings, polar));
}

TEST(SyntheticModels, OutputsAreFinite) {
  core::Rng ring_rng(7);
  std::vector<recon::ComptonRing> rings;
  std::vector<double> polar;
  for (int i = 0; i < 32; ++i) {
    rings.push_back(synthetic_ring(ring_rng));
    polar.push_back(ring_rng.uniform(0.0, 90.0));
  }
  auto fp32 = synthetic_background_net(9);
  for (const float l : fp32.logits_batch(rings, polar))
    EXPECT_TRUE(std::isfinite(l));
  auto int8 = synthetic_background_net_int8(9);
  for (const float l : int8.logits_batch(rings, polar))
    EXPECT_TRUE(std::isfinite(l));
  auto deta = synthetic_deta_net(9);
  for (const double d : deta.predict_batch(rings, polar)) {
    EXPECT_GE(d, 1e-4);
    EXPECT_LE(d, 2.0);
  }
}

}  // namespace
}  // namespace adapt::serve
