#include "serve/throughput.hpp"

#include <gtest/gtest.h>

#include "serve/synthetic_models.hpp"

namespace adapt::serve {
namespace {

TEST(ServeThroughput, ServeModeProcessesEverything) {
  auto background = synthetic_background_net(51);
  auto deta = synthetic_deta_net(52);
  ThroughputConfig config;
  config.events = 256;
  config.max_batch = 16;
  config.queue_capacity = 1024;

  const ThroughputReport report =
      measure_serve_throughput({&background, &deta}, config);
  EXPECT_EQ(report.processed, config.events);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_GT(report.events_per_s, 0.0);
  EXPECT_GE(report.p99_latency_ms, report.p50_latency_ms);
  EXPECT_GT(report.batches, 0u);
  EXPECT_LE(report.batches, report.processed);
}

TEST(ServeThroughput, BaselineProcessesEverything) {
  auto background = synthetic_background_net(51);
  ThroughputConfig config;
  config.events = 64;

  const ThroughputReport report =
      measure_per_ring_baseline({&background, nullptr}, config);
  EXPECT_EQ(report.processed, config.events);
  EXPECT_EQ(report.batches, config.events);
  EXPECT_GT(report.events_per_s, 0.0);
}

TEST(ServeThroughput, SaturationShedsButNeverLoses) {
  auto background = synthetic_background_net_int8(53);
  ThroughputConfig config;
  config.events = 512;
  config.producers = 4;
  config.queue_capacity = 16;  // Far too small on purpose.
  config.max_batch = 16;

  const ThroughputReport report =
      measure_serve_throughput({&background, nullptr}, config);
  // Every event is accounted for: served or visibly shed.
  EXPECT_EQ(report.processed + report.shed, config.events);
  EXPECT_GT(report.processed, 0u);
}

}  // namespace
}  // namespace adapt::serve
