#include "serve/micro_batcher.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/contract.hpp"

namespace adapt::serve {
namespace {

ServeRequest request(std::uint64_t sequence) {
  ServeRequest r;
  r.sequence = sequence;
  r.enqueued_at = std::chrono::steady_clock::now();
  return r;
}

TEST(MicroBatcher, SizeFlushSplitsIntoFullBatches) {
  EventQueue q(32);
  MicroBatcher batcher(q, BatchPolicy{4, std::chrono::microseconds(0)});
  for (std::uint64_t s = 1; s <= 8; ++s) q.push(request(s));

  std::vector<ServeRequest> batch;
  EXPECT_EQ(batcher.next_batch(batch), 4u);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.front().sequence, 1u);
  batch.clear();
  EXPECT_EQ(batcher.next_batch(batch), 4u);
  EXPECT_EQ(batch.front().sequence, 5u);
}

TEST(MicroBatcher, DeadlineFlushShipsPartialBatch) {
  EventQueue q(32);
  MicroBatcher batcher(q, BatchPolicy{16, std::chrono::microseconds(500)});
  q.push(request(1));
  q.push(request(2));

  // Only two of sixteen are waiting; the deadline must release them.
  std::vector<ServeRequest> batch;
  EXPECT_EQ(batcher.next_batch(batch), 2u);
}

TEST(MicroBatcher, DrainFlushThenZeroAfterClose) {
  EventQueue q(32);
  MicroBatcher batcher(q, BatchPolicy{16, std::chrono::microseconds(500)});
  q.push(request(1));
  q.close();

  std::vector<ServeRequest> batch;
  EXPECT_EQ(batcher.next_batch(batch), 1u);
  EXPECT_EQ(batcher.next_batch(batch), 0u);
  // And stays 0: the drained state is terminal.
  EXPECT_EQ(batcher.next_batch(batch), 0u);
}

TEST(MicroBatcher, RejectsInvalidPolicy) {
  EventQueue q(8);
  EXPECT_THROW(
      MicroBatcher(q, BatchPolicy{0, std::chrono::microseconds(100)}),
      core::ContractViolation);
  EXPECT_THROW(
      MicroBatcher(q, BatchPolicy{4, std::chrono::microseconds(-1)}),
      core::ContractViolation);
}

}  // namespace
}  // namespace adapt::serve
