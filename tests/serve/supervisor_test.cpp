#include "serve/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "fault/injector.hpp"
#include "serve/synthetic_models.hpp"

namespace adapt::serve {
namespace {

using namespace std::chrono_literals;

// Owns the model pair, the supervised server, and an ordered capture
// of everything the sink delivers.
class SupervisorTest : public ::testing::Test {
 protected:
  SupervisorTest()
      : background_(synthetic_background_net_int8(1)),
        deta_(synthetic_deta_net(2)) {}

  SupervisorConfig fast_config() {
    SupervisorConfig cfg;
    cfg.serve.queue_capacity = 256;
    cfg.serve.max_batch = 8;
    cfg.serve.degrade_when_saturated = false;
    cfg.max_retries = 2;
    cfg.retry_backoff = std::chrono::microseconds(50);
    cfg.watchdog_interval = 5ms;
    cfg.stall_timeout = 60ms;
    return cfg;
  }

  void make_supervisor(SupervisorConfig cfg) {
    pipeline::Models models;
    models.background = &background_;
    models.deta = &deta_;
    supervisor_ = std::make_unique<Supervisor>(
        models, cfg, [this](std::span<const ServeResult> results) {
          std::lock_guard<std::mutex> lock(results_mutex_);
          for (const auto& r : results) results_.push_back(r);
        });
  }

  std::size_t delivered_count() {
    std::lock_guard<std::mutex> lock(results_mutex_);
    return results_.size();
  }

  std::vector<ServeResult> delivered() {
    std::lock_guard<std::mutex> lock(results_mutex_);
    return results_;
  }

  // Poll until `n` results reached the sink; the queue is small and
  // the flush deadline short, so 5 s only trips on a real hang.
  ::testing::AssertionResult wait_delivered(std::size_t n) {
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (std::chrono::steady_clock::now() < deadline) {
      if (delivered_count() >= n) return ::testing::AssertionSuccess();
      std::this_thread::sleep_for(1ms);
    }
    return ::testing::AssertionFailure()
           << "delivered " << delivered_count() << "/" << n << " before "
           << "timeout";
  }

  std::uint64_t submit_one() {
    return supervisor_->submit(synthetic_ring(rng_), 30.0);
  }

  pipeline::BackgroundNet background_;
  pipeline::DEtaNet deta_;
  core::Rng rng_{77};
  std::unique_ptr<Supervisor> supervisor_;
  std::mutex results_mutex_;
  std::vector<ServeResult> results_;
};

TEST_F(SupervisorTest, TransientFaultInVeryFirstBatchRecoversInvisibly) {
  // The retry path must work before any healthy batch has ever run —
  // no warm-up state may be assumed.
  fault::Injector injector(5);
  make_supervisor(fast_config());
  supervisor_->set_forward_hook(
      [&injector](std::size_t n) { injector.on_forward_attempt(n); });
  injector.arm_transient(1);

  supervisor_->start();
  EXPECT_NE(submit_one(), 0u);
  ASSERT_TRUE(wait_delivered(1));
  supervisor_->stop();

  const auto results = delivered();
  EXPECT_FALSE(results[0].fallback);
  const SupervisorStats stats = supervisor_->stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.transient_recovered, 1u);
  EXPECT_EQ(stats.fallback_batches, 0u);
  EXPECT_EQ(stats.state, HealthState::kHealthy);
}

TEST_F(SupervisorTest, PersistentFaultInVeryFirstBatchFallsBackFlagged) {
  fault::Injector injector(6);
  SupervisorConfig cfg = fast_config();
  make_supervisor(cfg);
  supervisor_->set_forward_hook(
      [&injector](std::size_t n) { injector.on_forward_attempt(n); });
  injector.arm_persistent(cfg.max_retries + 1);

  supervisor_->start();
  EXPECT_NE(submit_one(), 0u);
  ASSERT_TRUE(wait_delivered(1));
  supervisor_->stop();

  const auto results = delivered();
  EXPECT_TRUE(results[0].fallback);
  EXPECT_TRUE(std::isfinite(results[0].d_eta));
  const SupervisorStats stats = supervisor_->stats();
  EXPECT_EQ(stats.retries, cfg.max_retries);
  EXPECT_EQ(stats.fallback_batches, 1u);
  EXPECT_EQ(stats.delivered_fallback, 1u);
  // A forward failure is not model corruption: health stays green.
  EXPECT_EQ(stats.state, HealthState::kHealthy);
}

TEST_F(SupervisorTest, BothModelsCorruptSimultaneouslyFallsBackNotCrash) {
  fault::Injector injector(7);
  make_supervisor(fast_config());
  supervisor_->start();

  // One SEU in each resident model, landed between batches.
  fault::Injector::BitFlip flip;
  std::vector<std::vector<float>> fp32_snapshot;
  supervisor_->with_models_quiesced([&](pipeline::Models& models) {
    fp32_snapshot = models.deta->model()->snapshot_weights();
    flip = injector.flip_int8_weight_bit(*models.background->int8_model());
    injector.corrupt_fp32_weight(*models.deta->model());
  });

  supervisor_->health_tick();
  SupervisorStats stats = supervisor_->stats();
  EXPECT_EQ(stats.checksum_failures, 2u);
  EXPECT_EQ(stats.state, HealthState::kDegraded);
  EXPECT_EQ(stats.degraded_entered, 1u);

  // Service continues analytically, every result flagged.
  for (int i = 0; i < 4; ++i) EXPECT_NE(submit_one(), 0u);
  ASSERT_TRUE(wait_delivered(4));
  for (const auto& r : delivered()) EXPECT_TRUE(r.fallback);

  // Repair both models and re-arm their reference digests.
  supervisor_->with_models_quiesced([&](pipeline::Models& models) {
    fault::Injector::flip_back(*models.background->int8_model(), flip);
    models.deta->model()->restore_weights(fp32_snapshot);
  });
  supervisor_->restore_background(&background_);
  supervisor_->restore_deta(&deta_);
  EXPECT_EQ(supervisor_->state(), HealthState::kRecovering);

  EXPECT_NE(submit_one(), 0u);
  ASSERT_TRUE(wait_delivered(5));
  supervisor_->stop();

  stats = supervisor_->stats();
  EXPECT_FALSE(delivered().back().fallback);
  EXPECT_EQ(stats.restores, 2u);
  EXPECT_EQ(stats.delivered_fallback, 4u);
  EXPECT_EQ(stats.state, HealthState::kHealthy);
  EXPECT_EQ(stats.healthy_entered, 1u);
}

TEST_F(SupervisorTest, NoDegradedResultEmittedAfterModelRestored) {
  // Recovery-ordering invariant: once restore_* returns (with the
  // degraded window drained first), nothing delivered afterwards may
  // carry the fallback flag.
  fault::Injector injector(8);
  make_supervisor(fast_config());
  supervisor_->start();

  const auto flip = [&] {
    fault::Injector::BitFlip f;
    supervisor_->with_models_quiesced([&](pipeline::Models& models) {
      f = injector.flip_int8_weight_bit(*models.background->int8_model());
    });
    return f;
  }();
  supervisor_->health_tick();
  ASSERT_EQ(supervisor_->state(), HealthState::kDegraded);

  for (int i = 0; i < 5; ++i) EXPECT_NE(submit_one(), 0u);
  ASSERT_TRUE(wait_delivered(5));  // Drain the degraded window...

  supervisor_->with_models_quiesced([&](pipeline::Models& models) {
    fault::Injector::flip_back(*models.background->int8_model(), flip);
  });
  supervisor_->restore_background(&background_);  // ...then restore.

  for (int i = 0; i < 10; ++i) EXPECT_NE(submit_one(), 0u);
  ASSERT_TRUE(wait_delivered(15));
  supervisor_->stop();

  const auto results = delivered();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(results[i].fallback) << "degraded-window result " << i;
  }
  for (std::size_t i = 5; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].fallback) << "post-restore result " << i;
  }
  const SupervisorStats stats = supervisor_->stats();
  EXPECT_EQ(stats.delivered_fallback, 5u);
  EXPECT_EQ(stats.state, HealthState::kHealthy);
}

TEST_F(SupervisorTest, InadmissibleRingRejectedAtSubmit) {
  make_supervisor(fast_config());
  supervisor_->start();

  recon::ComptonRing ring = synthetic_ring(rng_);
  ring.hit1.energy = std::nan("");
  EXPECT_EQ(supervisor_->submit(ring, 30.0), 0u);

  ring = synthetic_ring(rng_);
  ring.eta = 1.5;  // Out-of-range cosine.
  EXPECT_EQ(supervisor_->submit(ring, 30.0), 0u);

  // A valid ring with a non-finite polar guess is equally refused.
  EXPECT_EQ(supervisor_->submit(synthetic_ring(rng_), std::nan("")), 0u);

  supervisor_->stop();
  const SupervisorStats stats = supervisor_->stats();
  EXPECT_EQ(stats.input_rejected, 3u);
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(delivered_count(), 0u);
}

TEST_F(SupervisorTest, QueueDropAndDuplicateFaultsAbsorbed) {
  make_supervisor(fast_config());
  int submit_index = 0;
  supervisor_->set_queue_fault_hook([&submit_index]() {
    return submit_index++ == 0 ? QueueFault::kDrop : QueueFault::kDuplicate;
  });
  supervisor_->start();

  EXPECT_EQ(submit_one(), 0u);  // Dropped at the handoff.
  EXPECT_NE(submit_one(), 0u);  // Enqueued twice, delivered once.
  ASSERT_TRUE(wait_delivered(1));
  supervisor_->stop();

  const SupervisorStats stats = supervisor_->stats();
  EXPECT_EQ(stats.queue_drops, 1u);
  EXPECT_EQ(stats.duplicates_suppressed, 1u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(delivered_count(), 1u);
}

TEST_F(SupervisorTest, WatchdogRestartsStalledWorkerAndServiceResumes) {
  fault::Injector injector(9);
  make_supervisor(fast_config());
  supervisor_->set_forward_hook(
      [&injector](std::size_t n) { injector.on_forward_attempt(n); });
  supervisor_->start();

  injector.arm_stall(250ms);  // Far past the 60 ms stall timeout.
  EXPECT_NE(submit_one(), 0u);
  ASSERT_TRUE(wait_delivered(1));

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (supervisor_->stats().watchdog_restarts == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(supervisor_->stats().watchdog_restarts, 1u);

  // The replacement worker serves normally.
  EXPECT_NE(submit_one(), 0u);
  ASSERT_TRUE(wait_delivered(2));
  supervisor_->stop();
  EXPECT_FALSE(delivered().back().fallback);
}

// Regression for a bug the thread-safety annotations surfaced: the old
// try_health_tick checked try_lock(), UNLOCKED, then called
// health_tick() — which blocks on state_mutex_.  The engine holds
// state_mutex_ for the entire forward, so a watchdog calling the old
// try_health_tick during a stalled forward would block on the very
// mutex the stall holds, freezing the thread whose job is to detect
// the stall.  The fixed version runs the tick under the try-acquired
// lock and returns false — promptly — when the worker has it.
TEST_F(SupervisorTest, TryHealthTickDoesNotBlockWhileForwardHoldsStateMutex) {
  std::atomic<bool> in_forward{false};
  std::atomic<bool> release_forward{false};
  SupervisorConfig cfg = fast_config();
  cfg.watchdog_interval = 0ms;  // No watchdog: this test IS the watchdog.
  make_supervisor(cfg);
  // The hook runs under state_mutex_, standing in for the forward.
  supervisor_->set_forward_hook([&](std::size_t) {
    in_forward = true;
    while (!release_forward) std::this_thread::sleep_for(1ms);
  });

  supervisor_->start();
  EXPECT_NE(submit_one(), 0u);
  const auto entry_deadline = std::chrono::steady_clock::now() + 5s;
  while (!in_forward && std::chrono::steady_clock::now() < entry_deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(in_forward.load()) << "forward hook never entered";

  // state_mutex_ is held by the (simulated) stalled forward: the tick
  // must refuse, not wait.  Bound the call to rule out blocking.
  const auto t0 = std::chrono::steady_clock::now();
  const bool ticked = supervisor_->try_health_tick();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(ticked);
  EXPECT_LT(elapsed, 1s) << "try_health_tick blocked on a held state_mutex_";

  release_forward = true;
  ASSERT_TRUE(wait_delivered(1));
  supervisor_->stop();
  // Idle supervisor: the tick acquires and actually runs.
  EXPECT_TRUE(supervisor_->try_health_tick());
  EXPECT_EQ(supervisor_->stats().state, HealthState::kHealthy);
}

// Regression for the second annotation-surfaced bug: observe_batch and
// deliver used to invoke the user callback while holding sink_mutex_.
// A callback that reenters submit() during an injected-duplicate round
// takes server_mutex_ -> sink_mutex_ (the duplicate registration), and
// sink_mutex_ is not recursive — the worker thread self-deadlocked.
// Both paths now release sink_mutex_ before the callback runs, so a
// reentrant observer must complete.
TEST_F(SupervisorTest, ReentrantObserverSubmittingDuplicateDoesNotDeadlock) {
  std::atomic<bool> reentered{false};
  make_supervisor(fast_config());
  supervisor_->set_queue_fault_hook([] { return QueueFault::kDuplicate; });
  supervisor_->set_batch_observer(
      [&](std::span<const ServeRequest>, std::span<const ServeResult>) {
        if (!reentered.exchange(true)) {
          core::Rng rng(101);
          EXPECT_NE(supervisor_->submit(synthetic_ring(rng), 30.0), 0u);
        }
      });

  supervisor_->start();
  EXPECT_NE(submit_one(), 0u);
  // Both the original event and the observer's reentrant one deliver
  // exactly once (their injected duplicates are suppressed).
  ASSERT_TRUE(wait_delivered(2));
  supervisor_->stop();

  EXPECT_TRUE(reentered.load());
  const SupervisorStats stats = supervisor_->stats();
  EXPECT_EQ(stats.delivered, 2u);
  EXPECT_EQ(stats.duplicates_suppressed, 2u);
}

// Same deadlock shape through deliver(): a sink that reenters submit()
// while duplicates are being injected.
TEST_F(SupervisorTest, ReentrantSinkSubmittingDuplicateDoesNotDeadlock) {
  std::atomic<bool> reentered{false};
  pipeline::Models models;
  models.background = &background_;
  models.deta = &deta_;
  supervisor_ = std::make_unique<Supervisor>(
      models, fast_config(), [this, &reentered](std::span<const ServeResult> results) {
        {
          std::lock_guard<std::mutex> lock(results_mutex_);
          for (const auto& r : results) results_.push_back(r);
        }
        if (!reentered.exchange(true)) {
          core::Rng rng(102);
          EXPECT_NE(supervisor_->submit(synthetic_ring(rng), 30.0), 0u);
        }
      });
  supervisor_->set_queue_fault_hook([] { return QueueFault::kDuplicate; });

  supervisor_->start();
  EXPECT_NE(submit_one(), 0u);
  ASSERT_TRUE(wait_delivered(2));
  supervisor_->stop();

  EXPECT_TRUE(reentered.load());
  EXPECT_EQ(supervisor_->stats().delivered, 2u);
}

}  // namespace
}  // namespace adapt::serve
