#include "physics/cross_sections.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.hpp"
#include "core/units.hpp"
#include "physics/compton.hpp"

namespace adapt::physics {
namespace {

TEST(KleinNishina, ApproachesThomsonAtLowEnergy) {
  // sigma -> sigma_Thomson as E -> 0.
  const double sigma = klein_nishina_total(1e-4);
  EXPECT_NEAR(sigma / core::kThomsonCrossSectionCm2, 1.0, 0.01);
}

TEST(KleinNishina, KnownValueAtOneMeV) {
  // Published value: ~0.2112 barn per electron at 1 MeV.
  EXPECT_NEAR(klein_nishina_total(1.0), 0.2112e-24, 0.003e-24);
}

TEST(KleinNishina, MonotonicallyDecreasing) {
  double prev = klein_nishina_total(0.01);
  for (double e = 0.02; e < 20.0; e *= 1.5) {
    const double sigma = klein_nishina_total(e);
    EXPECT_LT(sigma, prev);
    prev = sigma;
  }
}

TEST(KleinNishinaSampling, CosThetaWithinBounds) {
  core::Rng rng(1);
  for (double e : {0.05, 0.5, 5.0}) {
    for (int i = 0; i < 2000; ++i) {
      const double c = sample_klein_nishina_cos_theta(e, rng);
      ASSERT_GE(c, -1.0);
      ASSERT_LE(c, 1.0);
    }
  }
}

TEST(KleinNishinaSampling, ForwardPeakingGrowsWithEnergy) {
  core::Rng rng(2);
  const auto mean_cos = [&rng](double e) {
    core::RunningStat s;
    for (int i = 0; i < 30000; ++i)
      s.add(sample_klein_nishina_cos_theta(e, rng));
    return s.mean();
  };
  const double low = mean_cos(0.05);
  const double mid = mean_cos(0.5);
  const double high = mean_cos(5.0);
  EXPECT_LT(low, mid);
  EXPECT_LT(mid, high);
  EXPECT_GT(high, 0.45);  // Markedly forward at 5 MeV (mean cos ~0.51).
}

TEST(KleinNishinaSampling, LowEnergyNearlySymmetric) {
  // Thomson limit: distribution ~ (1 + cos^2), mean cos ~ 0.
  core::Rng rng(3);
  core::RunningStat s;
  for (int i = 0; i < 30000; ++i)
    s.add(sample_klein_nishina_cos_theta(1e-4, rng));
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
}

TEST(Attenuation, ComptonDominatesInMevBandForCsI) {
  const auto mat = detector::Material::csi();
  for (double e : {0.7, 1.0, 2.0, 4.0}) {
    const Attenuation mu = attenuation(mat, e);
    EXPECT_GT(mu.compton, mu.photoelectric) << "at E = " << e;
  }
}

TEST(Attenuation, PhotoelectricDominatesAtLowEnergyForCsI) {
  const auto mat = detector::Material::csi();
  const Attenuation mu = attenuation(mat, 0.05);
  EXPECT_GT(mu.photoelectric, mu.compton);
}

TEST(Attenuation, PairProductionOnlyAboveThreshold) {
  const auto mat = detector::Material::csi();
  EXPECT_DOUBLE_EQ(attenuation(mat, 1.0).pair, 0.0);
  EXPECT_GT(attenuation(mat, 2.0).pair, 0.0);
  EXPECT_GT(attenuation(mat, 10.0).pair, attenuation(mat, 2.0).pair);
}

TEST(Attenuation, TotalIsSumOfParts) {
  const auto mat = detector::Material::csi();
  const Attenuation mu = attenuation(mat, 3.0);
  EXPECT_DOUBLE_EQ(mu.total(), mu.compton + mu.photoelectric + mu.pair);
}

TEST(Attenuation, CsIOneMeVMagnitudeIsPhysical) {
  // NIST XCOM: CsI total attenuation at 1 MeV ~ 0.26-0.28 1/cm.
  const auto mat = detector::Material::csi();
  const double mu = attenuation(mat, 1.0).total();
  EXPECT_GT(mu, 0.20);
  EXPECT_LT(mu, 0.35);
}

TEST(Attenuation, PlasticIsLessAttenuatingThanCsI) {
  const auto csi = detector::Material::csi();
  const auto plastic = detector::Material::plastic();
  for (double e : {0.1, 1.0, 5.0}) {
    EXPECT_LT(attenuation(plastic, e).total(), attenuation(csi, e).total());
  }
}

TEST(Attenuation, PhotoelectricContinuousAtKnee) {
  const auto mat = detector::Material::csi();
  const double below = attenuation(mat, mat.photo_knee * 0.999).photoelectric;
  const double above = attenuation(mat, mat.photo_knee * 1.001).photoelectric;
  EXPECT_NEAR(below / above, 1.0, 0.02);
}

TEST(SampleProcess, FrequenciesMatchPartialCoefficients) {
  core::Rng rng(4);
  Attenuation mu;
  mu.compton = 0.5;
  mu.photoelectric = 0.3;
  mu.pair = 0.2;
  int counts[3] = {0, 0, 0};
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    switch (sample_process(mu, rng)) {
      case Process::kCompton: ++counts[0]; break;
      case Process::kPhotoelectric: ++counts[1]; break;
      case Process::kPair: ++counts[2]; break;
    }
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.2, 0.01);
}

}  // namespace
}  // namespace adapt::physics
