#include "physics/transport.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.hpp"
#include "core/units.hpp"
#include "physics/compton.hpp"
#include "physics/cross_sections.hpp"

namespace adapt::physics {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  detector::Geometry geometry_{detector::GeometryConfig{}};
  detector::Material material_ = detector::Material::csi();
  Transport transport_{geometry_, material_, {}};
};

TEST_F(TransportTest, PhotonAimedAwayNeverInteracts) {
  core::Rng rng(1);
  const auto event =
      transport_.propagate({0, 0, 10}, {0, 0, 1}, 1.0, rng);
  EXPECT_TRUE(event.hits.empty());
  EXPECT_FALSE(event.fully_absorbed);
}

TEST_F(TransportTest, TruthMetadataRecorded) {
  core::Rng rng(2);
  const auto event =
      transport_.propagate({0, 0, 10}, {0, 0, -1}, 2.5, rng);
  EXPECT_DOUBLE_EQ(event.true_energy, 2.5);
  EXPECT_DOUBLE_EQ(event.true_direction.z, -1.0);
}

TEST_F(TransportTest, HitsLieInsideScintillator) {
  core::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto event =
        transport_.propagate({0, 0, 10}, {0, 0, -1}, 1.0, rng);
    for (const auto& hit : event.hits) {
      EXPECT_TRUE(geometry_.contains(hit.position))
          << "hit outside material at " << hit.position;
      EXPECT_EQ(geometry_.layer_at(hit.position.z), hit.layer);
      EXPECT_GT(hit.energy, 0.0);
    }
  }
}

TEST_F(TransportTest, FullyAbsorbedEventsConserveEnergy) {
  core::Rng rng(4);
  int checked = 0;
  for (int i = 0; i < 3000 && checked < 300; ++i) {
    const double e0 = 0.8;
    const auto event = transport_.propagate({0, 0, 10}, {0, 0, -1}, e0, rng);
    if (!event.fully_absorbed || event.hits.empty()) continue;
    double total = 0.0;
    for (const auto& hit : event.hits) total += hit.energy;
    EXPECT_NEAR(total, e0, 1e-9);
    ++checked;
  }
  EXPECT_GE(checked, 100);
}

TEST_F(TransportTest, PartialEventsDepositLessThanIncident) {
  core::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const double e0 = 1.5;
    const auto event = transport_.propagate({0, 0, 10}, {0, 0, -1}, e0, rng);
    if (event.fully_absorbed || event.hits.empty()) continue;
    double total = 0.0;
    for (const auto& hit : event.hits) total += hit.energy;
    EXPECT_LT(total, e0 + 1e-9);
  }
}

TEST_F(TransportTest, InteractionProbabilityMatchesAttenuation) {
  // A 1 MeV photon crossing four 1.5 cm CsI tiles sees optical depth
  // tau = mu * 6 cm; interaction fraction = 1 - exp(-tau).
  core::Rng rng(6);
  const double mu = attenuation(material_, 1.0).total();
  const double expected = 1.0 - std::exp(-mu * 6.0);
  int interacted = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto event = transport_.propagate({0, 0, 10}, {0, 0, -1}, 1.0, rng);
    if (!event.hits.empty()) ++interacted;
  }
  EXPECT_NEAR(interacted / static_cast<double>(n), expected, 0.015);
}

TEST_F(TransportTest, LowEnergyPhotonsPhotoabsorbInOneHit) {
  // 40 keV: photoelectric dominates so single-hit events prevail.
  core::Rng rng(7);
  int single = 0;
  int total = 0;
  for (int i = 0; i < 3000; ++i) {
    const auto event =
        transport_.propagate({0, 0, 10}, {0, 0, -1}, 0.04, rng);
    if (event.hits.empty()) continue;
    ++total;
    if (event.hits.size() == 1) ++single;
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(single / static_cast<double>(total), 0.9);
}

TEST_F(TransportTest, MevPhotonsOftenMultiScatter) {
  core::Rng rng(8);
  int multi = 0;
  int total = 0;
  for (int i = 0; i < 3000; ++i) {
    const auto event = transport_.propagate({0, 0, 10}, {0, 0, -1}, 1.0, rng);
    if (event.hits.empty()) continue;
    ++total;
    if (event.hits.size() >= 2) ++multi;
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(multi / static_cast<double>(total), 0.3);
}

TEST_F(TransportTest, FirstTwoHitsSatisfyComptonRingRelation) {
  // The invariant reconstruction relies on: for a fully absorbed
  // photon, eta from energies equals the geometric cosine between the
  // (true) first-two-hit axis and the source direction.
  core::Rng rng(9);
  const core::Vec3 source_dir{0, 0, 1};  // Photon travels -z.
  int checked = 0;
  for (int i = 0; i < 20000 && checked < 200; ++i) {
    const auto event = transport_.propagate({0, 0, 10}, {0, 0, -1}, 0.6, rng);
    if (!event.fully_absorbed || event.hits.size() < 2) continue;
    double e_total = 0.0;
    for (const auto& hit : event.hits) e_total += hit.energy;
    const double e1 = event.hits[0].energy;
    if (e1 <= 0.0 || e1 >= e_total) continue;
    // Skip events contaminated by annihilation secondaries (pair
    // production): they do not follow single-track kinematics.
    if (event.true_energy > 1.022) continue;
    const double eta = ring_cosine(e_total, e1);
    const core::Vec3 axis =
        (event.hits[0].position - event.hits[1].position).normalized();
    EXPECT_NEAR(eta, axis.dot(source_dir), 1e-6);
    ++checked;
  }
  EXPECT_GE(checked, 100);
}

TEST_F(TransportTest, PairProductionProducesSecondaries) {
  // Far above threshold, pair events deposit kinetic energy plus two
  // trackable 511 keV annihilation photons.
  core::Rng rng(10);
  int pair_like = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto event = transport_.propagate({0, 0, 10}, {0, 0, -1}, 8.0, rng);
    // Identify pair events by a hit of exactly E - 2 m_e c^2.
    for (const auto& hit : event.hits) {
      if (std::abs(hit.energy - (8.0 - 2.0 * core::kElectronMassMeV)) < 1e-9) {
        ++pair_like;
        break;
      }
    }
  }
  EXPECT_GT(pair_like, 10);
}

TEST_F(TransportTest, ObliqueIncidenceStillDetects) {
  core::Rng rng(11);
  const double polar = core::deg_to_rad(60.0);
  const core::Vec3 dir = -core::from_spherical(polar, 0.3);
  int detected = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto event =
        transport_.propagate(core::Vec3{0, 0, -15} - dir * 100.0, dir, 1.0,
                             rng);
    if (!event.hits.empty()) ++detected;
  }
  EXPECT_GT(detected, 200);
}

TEST_F(TransportTest, RejectsInvalidInputs) {
  core::Rng rng(12);
  EXPECT_THROW(transport_.propagate({0, 0, 10}, {0, 0, -1}, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(transport_.propagate({0, 0, 10}, {0, 0, -2}, 1.0, rng),
               std::invalid_argument);
}

TEST_F(TransportTest, DeterministicGivenSeed) {
  core::Rng rng1(13);
  core::Rng rng2(13);
  const auto a = transport_.propagate({0, 0, 10}, {0, 0, -1}, 1.0, rng1);
  const auto b = transport_.propagate({0, 0, 10}, {0, 0, -1}, 1.0, rng2);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.hits[i].energy, b.hits[i].energy);
    EXPECT_DOUBLE_EQ(a.hits[i].position.x, b.hits[i].position.x);
  }
}

}  // namespace
}  // namespace adapt::physics
