#include "physics/compton.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/units.hpp"

namespace adapt::physics {
namespace {

using core::kElectronMassMeV;

TEST(ComptonKinematics, ForwardScatterLosesNoEnergy) {
  EXPECT_DOUBLE_EQ(compton_scattered_energy(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(compton_energy_deposit(1.0, 1.0), 0.0);
}

TEST(ComptonKinematics, BackscatterEnergyFormula) {
  // At cos = -1: E' = E / (1 + 2E/m).
  const double e = 1.0;
  const double expected = e / (1.0 + 2.0 * e / kElectronMassMeV);
  EXPECT_NEAR(compton_scattered_energy(e, -1.0), expected, 1e-12);
}

TEST(ComptonKinematics, HighEnergyBackscatterApproachesHalfElectronMass) {
  // Classic limit: backscattered photon energy -> m_e c^2 / 2.
  EXPECT_NEAR(compton_scattered_energy(1000.0, -1.0),
              kElectronMassMeV / 2.0, 1e-3);
}

TEST(ComptonKinematics, ScatteredEnergyMonotonicInCosTheta) {
  double prev = 0.0;
  for (double c = -1.0; c <= 1.0; c += 0.05) {
    const double e = compton_scattered_energy(2.0, c);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(ComptonKinematics, CosThetaInvertsScatteredEnergy) {
  for (double e_in : {0.2, 0.5, 1.0, 5.0}) {
    for (double c : {-0.9, -0.3, 0.0, 0.4, 0.99}) {
      const double e_out = compton_scattered_energy(e_in, c);
      EXPECT_NEAR(compton_cos_theta(e_in, e_out), c, 1e-10);
    }
  }
}

TEST(ComptonKinematics, CosThetaUnclampedSignalsImpossiblePairs) {
  // Deposit exceeding the backscatter limit gives cos < -1.
  EXPECT_LT(compton_cos_theta(0.3, 0.05), -1.0);
  // Energy gain is impossible: cos > 1.
  EXPECT_GT(compton_cos_theta(0.3, 0.4), 1.0);
}

TEST(ComptonKinematics, RingCosineMatchesTwoHitDecomposition) {
  // ring_cosine(E, E1) must equal compton_cos_theta(E, E - E1).
  for (double e : {0.3, 0.8, 2.0}) {
    for (double frac : {0.1, 0.3, 0.6}) {
      const double e1 = frac * e;
      EXPECT_NEAR(ring_cosine(e, e1), compton_cos_theta(e, e - e1), 1e-12);
    }
  }
}

TEST(ComptonKinematics, RingCosineValidatesInput) {
  EXPECT_THROW(ring_cosine(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ring_cosine(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ring_cosine(0.0, 0.5), std::invalid_argument);
}

TEST(ComptonKinematics, MinEnergyForFirstDepositIsConsistent) {
  for (double dep : {0.05, 0.2, 0.5, 1.5}) {
    const double e_min = min_energy_for_first_deposit(dep);
    // A photon at exactly the minimum deposits `dep` at backscatter.
    EXPECT_NEAR(compton_energy_deposit(e_min, -1.0), dep, 1e-9);
    // A slightly smaller photon cannot reach the deposit.
    EXPECT_LT(compton_energy_deposit(e_min * 0.99, -1.0), dep);
  }
}

TEST(ComptonKinematics, DepositPlusScatteredConservesEnergy) {
  for (double e : {0.1, 1.0, 10.0}) {
    for (double c : {-1.0, 0.0, 0.7}) {
      EXPECT_NEAR(compton_energy_deposit(e, c) +
                      compton_scattered_energy(e, c),
                  e, 1e-12);
    }
  }
}

TEST(ComptonKinematics, RejectsNonPositiveEnergy) {
  EXPECT_THROW(compton_scattered_energy(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(compton_cos_theta(-1.0, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::physics
