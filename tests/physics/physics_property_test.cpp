/// Parameterized property sweeps over the physics layer: invariants
/// that must hold across the instrument's whole energy band and for
/// any material/geometry configuration.

#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.hpp"
#include "core/units.hpp"
#include "physics/compton.hpp"
#include "physics/cross_sections.hpp"
#include "physics/transport.hpp"

namespace adapt::physics {
namespace {

// ---------------------------------------------------------------------
// Compton kinematics invariants across the energy band.

class ComptonEnergySweep : public ::testing::TestWithParam<double> {};

TEST_P(ComptonEnergySweep, ScatteredEnergyBounded) {
  const double e = GetParam();
  for (double c = -1.0; c <= 1.0; c += 0.01) {
    const double e_out = compton_scattered_energy(e, c);
    ASSERT_GT(e_out, 0.0);
    ASSERT_LE(e_out, e + 1e-12);
  }
}

TEST_P(ComptonEnergySweep, KinematicsRoundTrip) {
  const double e = GetParam();
  for (double c = -0.99; c <= 0.99; c += 0.02) {
    const double e_out = compton_scattered_energy(e, c);
    ASSERT_NEAR(compton_cos_theta(e, e_out), c, 1e-9);
  }
}

TEST_P(ComptonEnergySweep, SampledAnglesMatchKnDistributionMean) {
  // Monte-Carlo mean of cos(theta) vs numerically integrated mean of
  // the Klein-Nishina angular distribution.
  const double e = GetParam();
  core::Rng rng(static_cast<std::uint64_t>(e * 1e6) + 1);
  core::RunningStat mc;
  for (int i = 0; i < 20000; ++i)
    mc.add(sample_klein_nishina_cos_theta(e, rng));

  double num = 0.0;
  double den = 0.0;
  for (double c = -0.9995; c < 1.0; c += 0.001) {
    const double r = compton_scattered_energy(e, c) / e;
    const double f = r * r * (r + 1.0 / r - (1.0 - c * c));
    num += c * f;
    den += f;
  }
  ASSERT_NEAR(mc.mean(), num / den, 0.02);
}

TEST_P(ComptonEnergySweep, TotalCrossSectionMatchesAngularIntegral) {
  // Integrating the differential distribution must reproduce the
  // closed-form Klein-Nishina total cross section.
  const double e = GetParam();
  const double k = e / core::kElectronMassMeV;
  const double re2 =
      core::kClassicalElectronRadiusCm * core::kClassicalElectronRadiusCm;
  double integral = 0.0;
  const double dc = 1e-4;
  for (double c = -1.0 + dc / 2; c < 1.0; c += dc) {
    const double r = 1.0 / (1.0 + k * (1.0 - c));
    const double dsigma = core::kPi * re2 * r * r *
                          (r + 1.0 / r - (1.0 - c * c));
    integral += dsigma * dc;
  }
  ASSERT_NEAR(integral / klein_nishina_total(e), 1.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(EnergyBand, ComptonEnergySweep,
                         ::testing::Values(0.05, 0.1, 0.3, 0.511, 1.0, 2.0,
                                           5.0, 10.0));

// ---------------------------------------------------------------------
// Attenuation model invariants across materials and energies.

class AttenuationSweep
    : public ::testing::TestWithParam<std::tuple<double, bool>> {};

TEST_P(AttenuationSweep, CoefficientsPositiveAndFinite) {
  const auto [e, use_plastic] = GetParam();
  const auto mat = use_plastic ? detector::Material::plastic()
                               : detector::Material::csi();
  const Attenuation mu = attenuation(mat, e);
  ASSERT_GT(mu.compton, 0.0);
  ASSERT_GE(mu.photoelectric, 0.0);
  ASSERT_GE(mu.pair, 0.0);
  ASSERT_TRUE(std::isfinite(mu.total()));
}

TEST_P(AttenuationSweep, ComptonScalesWithElectronDensity) {
  const auto [e, use_plastic] = GetParam();
  (void)use_plastic;
  const auto csi = detector::Material::csi();
  const auto plastic = detector::Material::plastic();
  const double ratio = attenuation(csi, e).compton /
                       attenuation(plastic, e).compton;
  ASSERT_NEAR(ratio, csi.electron_density / plastic.electron_density, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    MaterialGrid, AttenuationSweep,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.511, 1.0, 3.0, 8.0),
                       ::testing::Bool()));

// ---------------------------------------------------------------------
// Transport invariants across incidence angle and energy.

struct TransportCase {
  double energy;
  double polar_deg;
};

class TransportSweep : public ::testing::TestWithParam<TransportCase> {};

TEST_P(TransportSweep, EnergyNeverCreated) {
  const TransportCase tc = GetParam();
  const detector::Geometry geometry;
  const auto material = detector::Material::csi();
  const Transport transport(geometry, material);
  core::Rng rng(static_cast<std::uint64_t>(tc.energy * 1000 +
                                           tc.polar_deg));
  const core::Vec3 dir =
      -core::from_spherical(core::deg_to_rad(tc.polar_deg), 0.4);
  const core::Vec3 origin = geometry.center() - dir * 100.0;
  for (int i = 0; i < 400; ++i) {
    const auto event = transport.propagate(origin, dir, tc.energy, rng);
    double total = 0.0;
    for (const auto& hit : event.hits) total += hit.energy;
    ASSERT_LE(total, tc.energy + 1e-9);
    if (event.fully_absorbed && !event.hits.empty()) {
      ASSERT_NEAR(total, tc.energy, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnergyAngleGrid, TransportSweep,
    ::testing::Values(TransportCase{0.1, 0.0}, TransportCase{0.1, 60.0},
                      TransportCase{0.511, 30.0}, TransportCase{1.0, 0.0},
                      TransportCase{1.0, 80.0}, TransportCase{3.0, 45.0},
                      TransportCase{8.0, 20.0}));

}  // namespace
}  // namespace adapt::physics
