#include "eval/reject_gate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/contract.hpp"
#include "core/telemetry.hpp"
#include "eval/ring_io.hpp"

namespace adapt::eval {
namespace {

namespace tm = core::telemetry;

tm::Snapshot make_snapshot(std::uint64_t rejected, std::uint64_t loaded) {
  tm::Snapshot snapshot;
  if (rejected > 0)
    snapshot.counters["eval.ring_records_rejected.non_finite"] = rejected;
  if (loaded > 0) snapshot.counters["eval.rings_loaded"] = loaded;
  return snapshot;
}

TEST(RejectGate, FractionAndStrictThreshold) {
  const auto snapshot = make_snapshot(30, 70);
  RejectGateResult r = evaluate_reject_gate(snapshot, 0.25);
  EXPECT_EQ(r.rejected, 30u);
  EXPECT_EQ(r.loaded, 70u);
  EXPECT_DOUBLE_EQ(r.fraction, 0.3);
  EXPECT_TRUE(r.breached);

  // The comparison is strictly greater-than: a fraction exactly at the
  // threshold passes.
  EXPECT_FALSE(evaluate_reject_gate(snapshot, 0.3).breached);
  EXPECT_TRUE(evaluate_reject_gate(snapshot, 0.0).breached);
  EXPECT_FALSE(evaluate_reject_gate(snapshot, 1.0).breached);
}

TEST(RejectGate, SumsAllRejectionReasonCounters) {
  tm::Snapshot snapshot;
  snapshot.counters["eval.ring_records_rejected.non_finite"] = 4;
  snapshot.counters["eval.ring_records_rejected.bad_range"] = 6;
  snapshot.counters["eval.rings_loaded"] = 90;
  const RejectGateResult r = evaluate_reject_gate(snapshot, 0.05);
  EXPECT_EQ(r.rejected, 10u);
  EXPECT_DOUBLE_EQ(r.fraction, 0.1);
  EXPECT_TRUE(r.breached);
}

TEST(RejectGate, EmptyRunDoesNotBreach) {
  // The gate measures rejection, not absence of input: a command that
  // loaded no rings at all must not trip even at threshold 0.
  const RejectGateResult r = evaluate_reject_gate(tm::Snapshot{}, 0.0);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.loaded, 0u);
  EXPECT_DOUBLE_EQ(r.fraction, 0.0);
  EXPECT_FALSE(r.breached);
}

TEST(RejectGate, EveryRecordRejectedBreaches) {
  // The regression this gate exists for: a dataset where 100% of the
  // records were rejected used to exit 0.
  const auto snapshot = make_snapshot(160, 0);
  const RejectGateResult r = evaluate_reject_gate(snapshot, 0.99);
  EXPECT_DOUBLE_EQ(r.fraction, 1.0);
  EXPECT_TRUE(r.breached);
  EXPECT_FALSE(evaluate_reject_gate(snapshot, 1.0).breached);
}

TEST(RejectGate, ThresholdOutsideUnitIntervalIsAContractViolation) {
  const auto snapshot = make_snapshot(1, 1);
  EXPECT_THROW(evaluate_reject_gate(snapshot, -0.1), core::ContractViolation);
  EXPECT_THROW(evaluate_reject_gate(snapshot, 1.5), core::ContractViolation);
}

TEST(RejectGate, EndToEndThroughRingLoaderTelemetry) {
  // Drive the real loader over a file with one poisoned record and
  // evaluate the gate on live telemetry, exactly as adaptctl does.
  const std::string path = "/tmp/adaptml_reject_gate_test.adrg";
  TrialSetup setup;
  DatasetGenConfig cfg;
  cfg.polar_angles_deg = {0.0, 50.0};
  cfg.rings_per_angle = 40;
  cfg.seed = 12;
  const GeneratedRings rings = generate_training_rings(setup, cfg);
  ASSERT_TRUE(save_rings(rings, path));
  {
    // Header is magic[4] + version u32 + count u64 = 16 bytes; eta sits
    // after the 3-double axis in the first record.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    const double nan = std::nan("");
    f.seekp(16 + 3 * static_cast<std::streamoff>(sizeof(double)));
    f.write(reinterpret_cast<const char*>(&nan), sizeof(nan));
    ASSERT_TRUE(f.good());
  }

  const bool was_enabled = tm::enabled();
  tm::set_enabled(true);
  tm::reset();
  const auto loaded = load_rings(path);
  const tm::Snapshot snapshot = tm::snapshot();
  tm::set_enabled(was_enabled);
  std::remove(path.c_str());

  ASSERT_TRUE(loaded.has_value());
  const RejectGateResult r = evaluate_reject_gate(snapshot, 0.5);
  EXPECT_EQ(r.rejected, 1u);
  EXPECT_EQ(r.loaded, rings.size() - 1);
  EXPECT_FALSE(r.breached);
  EXPECT_TRUE(evaluate_reject_gate(snapshot, 0.0).breached);
}

}  // namespace
}  // namespace adapt::eval
