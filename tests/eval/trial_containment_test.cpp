#include <gtest/gtest.h>

#include "eval/containment.hpp"
#include "eval/trial.hpp"

namespace adapt::eval {
namespace {

TrialSetup fast_setup() {
  TrialSetup setup;
  // Keep trials cheap: dimmer background, small bursts.
  setup.background.photons_per_second = 4000.0;
  return setup;
}

TEST(TrialRunner, RunProducesConsistentCounters) {
  const TrialRunner runner(fast_setup());
  PipelineVariant variant;
  core::Rng rng(1);
  const TrialOutcome o = runner.run(variant, rng);
  EXPECT_EQ(o.rings_total, o.rings_grb + o.rings_background);
  EXPECT_GT(o.rings_total, 0u);
  if (o.valid) {
    EXPECT_GE(o.error_deg, 0.0);
    EXPECT_LE(o.error_deg, 180.0);
  }
  EXPECT_GT(o.timings.reconstruction_ms, 0.0);
  EXPECT_GT(o.timings.total_ms, o.timings.reconstruction_ms);
}

TEST(TrialRunner, DeterministicGivenSeed) {
  const TrialRunner runner(fast_setup());
  PipelineVariant variant;
  core::Rng rng1(7);
  core::Rng rng2(7);
  const TrialOutcome a = runner.run(variant, rng1);
  const TrialOutcome b = runner.run(variant, rng2);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.rings_total, b.rings_total);
  if (a.valid) {
    EXPECT_DOUBLE_EQ(a.error_deg, b.error_deg);
  }
}

TEST(TrialRunner, OracleBackgroundRemovalDropsAllBackground) {
  const TrialRunner runner(fast_setup());
  PipelineVariant oracle;
  oracle.oracle_remove_background = true;
  core::Rng rng(2);
  const TrialOutcome o = runner.run(oracle, rng);
  // Every kept ring must be GRB (the oracle used truth).
  EXPECT_LE(o.rings_kept, o.rings_grb);
  ASSERT_TRUE(o.valid);
  EXPECT_LT(o.error_deg, 10.0);
}

TEST(TrialRunner, OracleTrueDetaIsHighlyAccurate) {
  const TrialRunner runner(fast_setup());
  PipelineVariant oracle;
  oracle.oracle_remove_background = true;
  oracle.oracle_true_deta = true;
  core::Rng rng(3);
  const TrialOutcome o = runner.run(oracle, rng);
  ASSERT_TRUE(o.valid);
  // Fig. 4's best case: both corrections together localize to a small
  // fraction of a degree on our instrument.
  EXPECT_LT(o.error_deg, 2.0);
}

TEST(TrialRunner, GrbOnlyModeHasNoBackground) {
  TrialSetup setup = fast_setup();
  setup.include_background = false;
  const TrialRunner runner(setup);
  PipelineVariant variant;
  core::Rng rng(4);
  const TrialOutcome o = runner.run(variant, rng);
  EXPECT_EQ(o.rings_background, 0u);
  EXPECT_GT(o.rings_grb, 0u);
}

TEST(TrialRunner, PerturbationDegradesRingCount) {
  // Fig. 10's knob at an extreme value must visibly damage the data.
  TrialSetup clean = fast_setup();
  TrialSetup noisy = fast_setup();
  noisy.readout.perturbation_percent = 10.0;
  const TrialRunner clean_runner(clean);
  const TrialRunner noisy_runner(noisy);
  PipelineVariant variant;
  double clean_err = 0.0;
  double noisy_err = 0.0;
  int n = 0;
  for (int t = 0; t < 6; ++t) {
    core::Rng rng1(50 + t);
    core::Rng rng2(50 + t);
    const auto a = clean_runner.run(variant, rng1);
    const auto b = noisy_runner.run(variant, rng2);
    if (!a.valid || !b.valid) continue;
    clean_err += a.error_deg;
    noisy_err += b.error_deg;
    ++n;
  }
  ASSERT_GT(n, 2);
  EXPECT_GT(noisy_err, clean_err);
}

TEST(Containment, SummaryShapesAndDeterminism) {
  const TrialRunner runner(fast_setup());
  PipelineVariant variant;
  ContainmentConfig cfg;
  cfg.trials = 8;
  cfg.meta_trials = 2;
  cfg.seed = 99;
  const ContainmentSummary a = measure_containment(runner, variant, cfg);
  EXPECT_EQ(a.per_meta.size(), 2u);
  EXPECT_EQ(a.per_meta[0].trials, 8u);
  EXPECT_GE(a.c95.mean, a.c68.mean);
  EXPECT_GT(a.mean_rings_total, 0.0);

  const ContainmentSummary b = measure_containment(runner, variant, cfg);
  EXPECT_DOUBLE_EQ(a.c68.mean, b.c68.mean);
  EXPECT_DOUBLE_EQ(a.c95.mean, b.c95.mean);
}

TEST(Containment, OracleBeatsPlainPipeline) {
  const TrialRunner runner(fast_setup());
  ContainmentConfig cfg;
  cfg.trials = 10;
  cfg.meta_trials = 1;
  PipelineVariant plain;
  PipelineVariant oracle;
  oracle.oracle_remove_background = true;
  oracle.oracle_true_deta = true;
  const auto a = measure_containment(runner, plain, cfg);
  const auto b = measure_containment(runner, oracle, cfg);
  EXPECT_LE(b.c68.mean, a.c68.mean + 1e-9);
  EXPECT_LE(b.c95.mean, a.c95.mean + 1e-9);
}

TEST(Containment, RejectsEmptyConfig) {
  const TrialRunner runner(fast_setup());
  PipelineVariant variant;
  ContainmentConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW(measure_containment(runner, variant, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace adapt::eval
