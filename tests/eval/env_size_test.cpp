#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "eval/model_provider.hpp"

namespace adapt::eval {
namespace {

/// Sets an environment variable for one test and restores the prior
/// state on destruction, so tests cannot leak knobs into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_old_)
      ::setenv(name_, old_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

constexpr const char* kVar = "ADAPT_ENV_SIZE_TEST_VAR";

TEST(EnvSize, UnsetFallsBack) {
  ScopedEnv env(kVar, nullptr);
  EXPECT_EQ(env_size(kVar, 7), 7u);
  EXPECT_DOUBLE_EQ(env_double(kVar, 1.5), 1.5);
}

TEST(EnvSize, EmptyOrBlankFallsBack) {
  {
    ScopedEnv env(kVar, "");
    EXPECT_EQ(env_size(kVar, 7), 7u);
  }
  {
    ScopedEnv env(kVar, "   ");
    EXPECT_EQ(env_size(kVar, 7), 7u);
    EXPECT_DOUBLE_EQ(env_double(kVar, 2.5), 2.5);
  }
}

TEST(EnvSize, ParsesPositiveValues) {
  {
    ScopedEnv env(kVar, "300");
    EXPECT_EQ(env_size(kVar, 7), 300u);
  }
  {
    ScopedEnv env(kVar, " 42 ");  // Leading/trailing whitespace is fine.
    EXPECT_EQ(env_size(kVar, 7), 42u);
  }
  {
    ScopedEnv env(kVar, "0.25");
    EXPECT_DOUBLE_EQ(env_double(kVar, 1.0), 0.25);
  }
}

TEST(EnvSize, MalformedValueThrows) {
  {
    ScopedEnv env(kVar, "banana");
    EXPECT_THROW(env_size(kVar, 7), std::invalid_argument);
    EXPECT_THROW(env_double(kVar, 1.0), std::invalid_argument);
  }
  {
    ScopedEnv env(kVar, "12monkeys");  // Trailing garbage.
    EXPECT_THROW(env_size(kVar, 7), std::invalid_argument);
  }
}

TEST(EnvSize, NegativeOrZeroThrows) {
  {
    ScopedEnv env(kVar, "-5");
    EXPECT_THROW(env_size(kVar, 7), std::invalid_argument);
    EXPECT_THROW(env_double(kVar, 1.0), std::invalid_argument);
  }
  {
    ScopedEnv env(kVar, "0");
    EXPECT_THROW(env_size(kVar, 7), std::invalid_argument);
  }
}

TEST(EnvSize, OutOfRangeThrows) {
  ScopedEnv env(kVar, "99999999999999999999999999");  // > long long.
  EXPECT_THROW(env_size(kVar, 7), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::eval
