#include "eval/ring_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

namespace adapt::eval {
namespace {

GeneratedRings small_set() {
  const TrialSetup setup;
  DatasetGenConfig cfg;
  cfg.polar_angles_deg = {0.0, 50.0};
  cfg.rings_per_angle = 80;
  cfg.seed = 99;
  return generate_training_rings(setup, cfg);
}

class RingIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  const std::string path_ = "/tmp/adaptml_ring_io_test.adrg";
};

TEST_F(RingIoTest, RoundTripPreservesEverything) {
  const GeneratedRings original = small_set();
  ASSERT_TRUE(save_rings(original, path_));
  const auto loaded = load_rings(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  ASSERT_EQ(loaded->count_background(), original.count_background());

  for (std::size_t i = 0; i < original.size(); i += 7) {
    const auto& a = original.rings[i];
    const auto& b = loaded->rings[i];
    EXPECT_DOUBLE_EQ(a.eta, b.eta);
    EXPECT_DOUBLE_EQ(a.d_eta, b.d_eta);
    EXPECT_DOUBLE_EQ(a.e_total, b.e_total);
    EXPECT_DOUBLE_EQ(a.sigma_e_total, b.sigma_e_total);
    EXPECT_DOUBLE_EQ(a.axis.x, b.axis.x);
    EXPECT_DOUBLE_EQ(a.axis.z, b.axis.z);
    EXPECT_DOUBLE_EQ(a.hit1.position.y, b.hit1.position.y);
    EXPECT_DOUBLE_EQ(a.hit1.energy, b.hit1.energy);
    EXPECT_DOUBLE_EQ(a.hit1.sigma_energy, b.hit1.sigma_energy);
    EXPECT_DOUBLE_EQ(a.hit2.position.z, b.hit2.position.z);
    EXPECT_DOUBLE_EQ(a.hit2.sigma_position.x, b.hit2.sigma_position.x);
    EXPECT_EQ(a.n_hits, b.n_hits);
    EXPECT_EQ(a.origin, b.origin);
    EXPECT_DOUBLE_EQ(a.order_chi2, b.order_chi2);
    EXPECT_DOUBLE_EQ(a.true_direction.x, b.true_direction.x);
    EXPECT_DOUBLE_EQ(original.polar_degs[i], loaded->polar_degs[i]);
    EXPECT_DOUBLE_EQ(original.true_sources[i].z, loaded->true_sources[i].z);
  }
}

TEST_F(RingIoTest, DatasetsBuiltFromLoadedRingsAreIdentical) {
  const GeneratedRings original = small_set();
  ASSERT_TRUE(save_rings(original, path_));
  const auto loaded = load_rings(path_);
  ASSERT_TRUE(loaded.has_value());
  const nn::Dataset a = make_background_dataset(original, true);
  const nn::Dataset b = make_background_dataset(*loaded, true);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i)
    EXPECT_FLOAT_EQ(a.x.vec()[i], b.x.vec()[i]);
  EXPECT_EQ(a.y, b.y);
}

TEST_F(RingIoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_rings("/tmp/definitely_missing.adrg").has_value());
}

TEST_F(RingIoTest, CorruptHeaderRejected) {
  const GeneratedRings original = small_set();
  ASSERT_TRUE(save_rings(original, path_));
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputc('X', f);
    std::fclose(f);
  }
  EXPECT_FALSE(load_rings(path_).has_value());
}

TEST_F(RingIoTest, TruncatedPayloadRejected) {
  const GeneratedRings original = small_set();
  ASSERT_TRUE(save_rings(original, path_));
  // Chop off the tail.
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_FALSE(load_rings(path_).has_value());
}

TEST_F(RingIoTest, InconsistentSetRefusedOnSave) {
  GeneratedRings broken = small_set();
  broken.polar_degs.pop_back();
  EXPECT_FALSE(save_rings(broken, path_));
}

}  // namespace
}  // namespace adapt::eval
