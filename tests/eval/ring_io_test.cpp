#include "eval/ring_io.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <iterator>

#include "core/telemetry.hpp"

namespace adapt::eval {
namespace {

GeneratedRings small_set() {
  const TrialSetup setup;
  DatasetGenConfig cfg;
  cfg.polar_angles_deg = {0.0, 50.0};
  cfg.rings_per_angle = 80;
  cfg.seed = 99;
  return generate_training_rings(setup, cfg);
}

class RingIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  const std::string path_ = "/tmp/adaptml_ring_io_test.adrg";
};

TEST_F(RingIoTest, RoundTripPreservesEverything) {
  const GeneratedRings original = small_set();
  ASSERT_TRUE(save_rings(original, path_));
  const auto loaded = load_rings(path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  ASSERT_EQ(loaded->count_background(), original.count_background());

  for (std::size_t i = 0; i < original.size(); i += 7) {
    const auto& a = original.rings[i];
    const auto& b = loaded->rings[i];
    EXPECT_DOUBLE_EQ(a.eta, b.eta);
    EXPECT_DOUBLE_EQ(a.d_eta, b.d_eta);
    EXPECT_DOUBLE_EQ(a.e_total, b.e_total);
    EXPECT_DOUBLE_EQ(a.sigma_e_total, b.sigma_e_total);
    EXPECT_DOUBLE_EQ(a.axis.x, b.axis.x);
    EXPECT_DOUBLE_EQ(a.axis.z, b.axis.z);
    EXPECT_DOUBLE_EQ(a.hit1.position.y, b.hit1.position.y);
    EXPECT_DOUBLE_EQ(a.hit1.energy, b.hit1.energy);
    EXPECT_DOUBLE_EQ(a.hit1.sigma_energy, b.hit1.sigma_energy);
    EXPECT_DOUBLE_EQ(a.hit2.position.z, b.hit2.position.z);
    EXPECT_DOUBLE_EQ(a.hit2.sigma_position.x, b.hit2.sigma_position.x);
    EXPECT_EQ(a.n_hits, b.n_hits);
    EXPECT_EQ(a.origin, b.origin);
    EXPECT_DOUBLE_EQ(a.order_chi2, b.order_chi2);
    EXPECT_DOUBLE_EQ(a.true_direction.x, b.true_direction.x);
    EXPECT_DOUBLE_EQ(original.polar_degs[i], loaded->polar_degs[i]);
    EXPECT_DOUBLE_EQ(original.true_sources[i].z, loaded->true_sources[i].z);
  }
}

TEST_F(RingIoTest, DatasetsBuiltFromLoadedRingsAreIdentical) {
  const GeneratedRings original = small_set();
  ASSERT_TRUE(save_rings(original, path_));
  const auto loaded = load_rings(path_);
  ASSERT_TRUE(loaded.has_value());
  const nn::Dataset a = make_background_dataset(original, true);
  const nn::Dataset b = make_background_dataset(*loaded, true);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i)
    EXPECT_FLOAT_EQ(a.x.vec()[i], b.x.vec()[i]);
  EXPECT_EQ(a.y, b.y);
}

TEST_F(RingIoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_rings("/tmp/definitely_missing.adrg").has_value());
}

TEST_F(RingIoTest, CorruptHeaderRejected) {
  const GeneratedRings original = small_set();
  ASSERT_TRUE(save_rings(original, path_));
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputc('X', f);
    std::fclose(f);
  }
  EXPECT_FALSE(load_rings(path_).has_value());
}

TEST_F(RingIoTest, TruncatedPayloadRejected) {
  const GeneratedRings original = small_set();
  ASSERT_TRUE(save_rings(original, path_));
  // Chop off the tail.
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_FALSE(load_rings(path_).has_value());
}

TEST_F(RingIoTest, InconsistentSetRefusedOnSave) {
  GeneratedRings broken = small_set();
  broken.polar_degs.pop_back();
  EXPECT_FALSE(save_rings(broken, path_));
}

// Header layout: magic[4], version u32, count u64 — so the count field
// lives at byte offset 8 and the first record starts at 16.
constexpr std::streamoff kCountOffset = 8;
constexpr std::streamoff kPayloadOffset = 16;
// Within a record, eta follows the 3-double axis.
constexpr std::streamoff kEtaOffset = 3 * sizeof(double);

void patch_file(const std::string& path, std::streamoff offset,
                const void* bytes, std::size_t n) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekp(offset);
  f.write(static_cast<const char*>(bytes), static_cast<std::streamsize>(n));
  ASSERT_TRUE(f.good());
}

TEST_F(RingIoTest, OversizedCountHeaderRejectedWithoutAllocation) {
  // A corrupt header claiming ~10^18 records must be rejected against
  // the real file size BEFORE any reserve().  The seed reserved first
  // and OOM-killed the process; now the rejection is immediate — the
  // generous wall-clock bound below only fails if a huge allocation
  // (or swap thrash) actually happened.
  const GeneratedRings original = small_set();
  ASSERT_TRUE(save_rings(original, path_));
  const std::uint64_t huge = std::uint64_t{1} << 60;
  patch_file(path_, kCountOffset, &huge, sizeof(huge));

  namespace tm = core::telemetry;
  const bool was_enabled = tm::enabled();
  tm::set_enabled(true);
  const std::uint64_t rejected_before =
      tm::counter("eval.ring_files_rejected").value();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(load_rings(path_).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(tm::counter("eval.ring_files_rejected").value(),
            rejected_before + 1);
  tm::set_enabled(was_enabled);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

TEST_F(RingIoTest, CountLargerThanPayloadRejected) {
  // Even an off-by-one over the real record count is a corrupt file.
  const GeneratedRings original = small_set();
  ASSERT_TRUE(save_rings(original, path_));
  const std::uint64_t count = original.size() + 1;
  patch_file(path_, kCountOffset, &count, sizeof(count));
  EXPECT_FALSE(load_rings(path_).has_value());
}

TEST_F(RingIoTest, NonFiniteRecordSkippedAndCounted) {
  const GeneratedRings original = small_set();
  ASSERT_TRUE(save_rings(original, path_));
  const double nan = std::nan("");
  patch_file(path_, kPayloadOffset + kEtaOffset, &nan, sizeof(nan));

  namespace tm = core::telemetry;
  const bool was_enabled = tm::enabled();
  tm::set_enabled(true);
  const std::uint64_t rejected_before =
      tm::counter("eval.ring_records_rejected.non_finite").value();
  const auto loaded = load_rings(path_);
  EXPECT_EQ(tm::counter("eval.ring_records_rejected.non_finite").value(),
            rejected_before + 1);
  tm::set_enabled(was_enabled);

  // The poisoned record is dropped; everything else loads intact.
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size() - 1);
  for (const auto& ring : loaded->rings) {
    EXPECT_TRUE(std::isfinite(ring.eta));
    EXPECT_TRUE(std::isfinite(ring.d_eta));
  }
  EXPECT_DOUBLE_EQ(loaded->rings.front().eta, original.rings[1].eta);
}

}  // namespace
}  // namespace adapt::eval
