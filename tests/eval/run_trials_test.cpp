#include <gtest/gtest.h>

#include <vector>

#include "eval/trial.hpp"

namespace adapt::eval {
namespace {

TrialSetup fast_setup() {
  TrialSetup setup;
  setup.background.photons_per_second = 4000.0;
  return setup;
}

/// Everything except the timings (which are wall-clock measurements
/// and legitimately vary run to run) must be bit-identical.
void expect_same_outcome(const TrialOutcome& a, const TrialOutcome& b,
                         std::size_t t) {
  EXPECT_EQ(a.valid, b.valid) << "trial " << t;
  EXPECT_EQ(a.error_deg, b.error_deg) << "trial " << t;
  EXPECT_EQ(a.rings_total, b.rings_total) << "trial " << t;
  EXPECT_EQ(a.rings_grb, b.rings_grb) << "trial " << t;
  EXPECT_EQ(a.rings_background, b.rings_background) << "trial " << t;
  EXPECT_EQ(a.rings_kept, b.rings_kept) << "trial " << t;
  EXPECT_EQ(a.background_iterations, b.background_iterations)
      << "trial " << t;
}

TEST(RunTrials, ParallelMatchesSerialExactly) {
  const TrialRunner runner(fast_setup());
  PipelineVariant variant;
  const std::uint64_t seed = 0x71e;
  const std::size_t count = 6;

  const auto serial = run_trials(runner, variant, seed, count,
                                 /*parallel=*/false);
  const auto parallel = run_trials(runner, variant, seed, count,
                                   /*parallel=*/true);
  ASSERT_EQ(serial.size(), count);
  ASSERT_EQ(parallel.size(), count);
  for (std::size_t t = 0; t < count; ++t)
    expect_same_outcome(serial[t], parallel[t], t);
}

TEST(RunTrials, TrialsAreIndependentOfBatching) {
  // Trial t depends only on base_seed + t: the second half of a batch
  // equals a separate batch started at the offset seed.
  const TrialRunner runner(fast_setup());
  PipelineVariant variant;
  const auto whole = run_trials(runner, variant, 42, 4);
  const auto tail = run_trials(runner, variant, 44, 2);
  ASSERT_EQ(whole.size(), 4u);
  ASSERT_EQ(tail.size(), 2u);
  for (std::size_t t = 0; t < 2; ++t)
    expect_same_outcome(whole[2 + t], tail[t], t);
}

TEST(RunTrials, ZeroTrialsIsEmpty) {
  const TrialRunner runner(fast_setup());
  PipelineVariant variant;
  EXPECT_TRUE(run_trials(runner, variant, 1, 0).empty());
}

TEST(RunTrials, TelemetryDeltaIsScheduleIndependent) {
  // Every counter and histogram event count in the batch delta is a
  // sum over seed-determined per-trial work, so a parallel batch must
  // aggregate to exactly the serial totals (timing *values* are
  // wall-clock and excluded; event counts are not).
  namespace tm = core::telemetry;
  const bool was_enabled = tm::enabled();
  tm::set_enabled(true);

  const TrialRunner runner(fast_setup());
  PipelineVariant variant;
  tm::Snapshot serial;
  run_trials(runner, variant, 0x5eed, 6, /*parallel=*/false, &serial);
  tm::Snapshot parallel;
  run_trials(runner, variant, 0x5eed, 6, /*parallel=*/true, &parallel);
  tm::set_enabled(was_enabled);

  ASSERT_FALSE(serial.counters.empty());
  EXPECT_EQ(serial.counters, parallel.counters);
  EXPECT_EQ(serial.counters.at("eval.trials_run"), 6u);

  ASSERT_FALSE(serial.histograms.empty());
  for (const auto& [name, hist] : serial.histograms) {
    ASSERT_TRUE(parallel.histograms.count(name)) << name;
    EXPECT_EQ(hist.count, parallel.histograms.at(name).count) << name;
  }
  // The delta covers the per-trial stage timers the benches consume.
  EXPECT_TRUE(serial.histograms.count("recon.window_ms"));
  EXPECT_TRUE(serial.histograms.count("eval.trial_total_ms"));
  EXPECT_EQ(serial.histograms.at("eval.trial_total_ms").count, 6u);
}

TEST(RunTrials, TelemetryDeltaExcludesPriorActivity) {
  // The delta is since() the pre-batch snapshot: metric churn from
  // earlier batches must not leak in.
  namespace tm = core::telemetry;
  const bool was_enabled = tm::enabled();
  tm::set_enabled(true);

  const TrialRunner runner(fast_setup());
  PipelineVariant variant;
  tm::Snapshot warmup;
  run_trials(runner, variant, 1, 3, /*parallel=*/false, &warmup);
  tm::Snapshot delta;
  run_trials(runner, variant, 99, 2, /*parallel=*/false, &delta);
  tm::set_enabled(was_enabled);

  EXPECT_EQ(delta.counters.at("eval.trials_run"), 2u);
  EXPECT_EQ(delta.histograms.at("eval.trial_total_ms").count, 2u);
}

}  // namespace
}  // namespace adapt::eval
