#include "eval/dataset_gen.hpp"

#include <cmath>
#include <cstdlib>

#include "eval/model_provider.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pipeline/features.hpp"

namespace adapt::eval {
namespace {

DatasetGenConfig tiny_config() {
  DatasetGenConfig cfg;
  cfg.polar_angles_deg = {0.0, 40.0, 80.0};
  cfg.rings_per_angle = 150;
  cfg.seed = 7;
  return cfg;
}

TEST(DatasetGen, CollectsQuotaPerAngle) {
  const TrialSetup setup;
  const GeneratedRings data = generate_training_rings(setup, tiny_config());
  EXPECT_EQ(data.size(), 3u * 150u);
  EXPECT_EQ(data.polar_degs.size(), data.size());
  EXPECT_EQ(data.true_sources.size(), data.size());
  // Each configured angle appears.
  std::set<double> angles(data.polar_degs.begin(), data.polar_degs.end());
  EXPECT_EQ(angles.size(), 3u);
}

TEST(DatasetGen, ContainsBothClasses) {
  const TrialSetup setup;
  const GeneratedRings data = generate_training_rings(setup, tiny_config());
  const std::size_t n_bkg = data.count_background();
  EXPECT_GT(n_bkg, data.size() / 5);
  EXPECT_LT(n_bkg, data.size());
}

TEST(DatasetGen, TrueSourceMatchesPolarAngle) {
  const TrialSetup setup;
  const GeneratedRings data = generate_training_rings(setup, tiny_config());
  for (std::size_t i = 0; i < data.size(); i += 37) {
    const double polar =
        core::rad_to_deg(core::polar_of(data.true_sources[i]));
    EXPECT_NEAR(polar, data.polar_degs[i], 1e-6);
  }
}

TEST(DatasetGen, DeterministicGivenSeed) {
  const TrialSetup setup;
  const GeneratedRings a = generate_training_rings(setup, tiny_config());
  const GeneratedRings b = generate_training_rings(setup, tiny_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 53) {
    EXPECT_DOUBLE_EQ(a.rings[i].eta, b.rings[i].eta);
    EXPECT_DOUBLE_EQ(a.rings[i].axis.x, b.rings[i].axis.x);
  }
}

TEST(DatasetGen, BackgroundDatasetLayout) {
  const TrialSetup setup;
  const GeneratedRings data = generate_training_rings(setup, tiny_config());
  const nn::Dataset with_polar = make_background_dataset(data, true);
  EXPECT_EQ(with_polar.x.cols(), pipeline::kFeatureCount);
  EXPECT_EQ(with_polar.size(), data.size());
  // Labels match truth tags.
  std::size_t n_bkg = 0;
  for (float y : with_polar.y)
    if (y > 0.5f) ++n_bkg;
  EXPECT_EQ(n_bkg, data.count_background());
  // Per-row polar column matches the generation record.
  for (std::size_t i = 0; i < data.size(); i += 41) {
    EXPECT_FLOAT_EQ(with_polar.x(i, 12),
                    static_cast<float>(data.polar_degs[i]));
  }

  const nn::Dataset without = make_background_dataset(data, false);
  EXPECT_EQ(without.x.cols(), pipeline::kBaseFeatureCount);
}

TEST(DatasetGen, DetaDatasetExcludesBackground) {
  const TrialSetup setup;
  const GeneratedRings data = generate_training_rings(setup, tiny_config());
  const nn::Dataset deta = make_deta_dataset(data, true);
  EXPECT_EQ(deta.size(), data.size() - data.count_background());
  // Targets are bounded logs.
  for (float y : deta.y) {
    EXPECT_GE(y, std::log(1e-4f) - 1e-4f);
    EXPECT_LE(y, std::log(2.0f) + 1e-4f);
  }
}

TEST(DatasetGen, RejectsBadConfig) {
  const TrialSetup setup;
  DatasetGenConfig cfg = tiny_config();
  cfg.polar_angles_deg = {};
  EXPECT_THROW(generate_training_rings(setup, cfg), std::invalid_argument);
  cfg = tiny_config();
  cfg.rings_per_angle = 0;
  EXPECT_THROW(generate_training_rings(setup, cfg), std::invalid_argument);
}

TEST(EnvHelpers, ParseAndFallBack) {
  ASSERT_EQ(setenv("ADAPT_TEST_ENV_SIZE", "42", 1), 0);
  EXPECT_EQ(env_size("ADAPT_TEST_ENV_SIZE", 7), 42u);
  // Malformed values abort rather than silently running a differently
  // sized experiment (full coverage in env_size_test.cpp).
  ASSERT_EQ(setenv("ADAPT_TEST_ENV_SIZE", "garbage", 1), 0);
  EXPECT_THROW(env_size("ADAPT_TEST_ENV_SIZE", 7), std::invalid_argument);
  EXPECT_EQ(env_size("ADAPT_TEST_ENV_MISSING", 9), 9u);

  ASSERT_EQ(setenv("ADAPT_TEST_ENV_DBL", "2.5", 1), 0);
  EXPECT_DOUBLE_EQ(env_double("ADAPT_TEST_ENV_DBL", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(env_double("ADAPT_TEST_ENV_MISSING", 1.5), 1.5);
  unsetenv("ADAPT_TEST_ENV_SIZE");
  unsetenv("ADAPT_TEST_ENV_DBL");
}

}  // namespace
}  // namespace adapt::eval
