/// \file driver_main.cpp
/// Standalone driver for the fuzz harnesses when libFuzzer is not
/// available (the default GCC toolchain).  Linked into each harness
/// instead of -fsanitize=fuzzer; speaks enough of the libFuzzer CLI
/// shape to be a drop-in for the smoke gate:
///
///   fuzz_x FILE...            replay each file once (crash triage /
///                             corpus regression)
///   fuzz_x --smoke SECS DIR   replay every file under DIR, then run
///                             deterministic seeded mutations of those
///                             seeds until SECS seconds elapse
///
/// The mutation loop is intentionally deterministic (core::Rng with a
/// fixed seed): a CI smoke run that fails is reproducible by rerunning
/// the same binary, with no corpus-of-the-day flakiness.  It is a
/// coverage smoke test, not a substitute for a real coverage-guided
/// run — build with Clang and ADAPT_BUILD_FUZZERS for that.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "core/rng.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

bool read_file(const std::filesystem::path& path, std::string& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream raw;
  raw << is.rdbuf();
  out = raw.str();
  return true;
}

void run_one(const std::string& bytes) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
}

/// Apply 1..8 random edits to a copy of `seed`: byte flips, truncation,
/// duplication-insert, or a u32 splice of an interesting boundary value
/// (0, 1, 0xff.., 0x7fff..) at a random offset — the classic
/// length-field attacks, minus the coverage feedback.
std::string mutate(const std::string& seed, adapt::core::Rng& rng) {
  std::string out = seed;
  const std::uint64_t n_edits = 1 + rng.uniform_index(8);
  for (std::uint64_t e = 0; e < n_edits && !out.empty(); ++e) {
    switch (rng.uniform_index(4)) {
      case 0: {  // Flip a byte.
        const std::size_t at = rng.uniform_index(out.size());
        out[at] = static_cast<char>(rng.uniform_index(256));
        break;
      }
      case 1: {  // Truncate.
        out.resize(rng.uniform_index(out.size() + 1));
        break;
      }
      case 2: {  // Duplicate a chunk into a random position.
        const std::size_t from = rng.uniform_index(out.size());
        const std::size_t len =
            1 + rng.uniform_index(std::min<std::size_t>(64, out.size() - from));
        const std::size_t at = rng.uniform_index(out.size());
        out.insert(at, out.substr(from, len));
        break;
      }
      default: {  // Splice an interesting u32 (length-field attack).
        static constexpr std::uint32_t kInteresting[] = {
            0u, 1u, 0x7fu, 0xffu, 0xffffu, 0x7fffffffu, 0xfffffffeu,
            0xffffffffu};
        const std::uint32_t v =
            kInteresting[rng.uniform_index(std::size(kInteresting))];
        if (out.size() >= sizeof(v)) {
          const std::size_t at = rng.uniform_index(out.size() - sizeof(v) + 1);
          std::memcpy(out.data() + at, &v, sizeof(v));
        }
        break;
      }
    }
  }
  return out;
}

int smoke(double seconds, const std::filesystem::path& corpus_dir) {
  std::vector<std::string> seeds;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(corpus_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string bytes;
    if (read_file(entry.path(), bytes)) seeds.push_back(std::move(bytes));
  }
  if (seeds.empty()) {
    std::fprintf(stderr, "fuzz driver: no corpus files under %s\n",
                 corpus_dir.string().c_str());
    return 2;
  }

  // Every seed replays as-is first — the corpus doubles as a format
  // regression suite — then the time budget goes to mutations.
  for (const std::string& seed : seeds) run_one(seed);
  run_one(std::string());  // Empty input is always in scope.

  adapt::core::Rng rng(0x41444150u);  // "ADAP"; fixed for reproducibility.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  std::uint64_t execs = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    // Batch between clock checks; steady_clock::now() per exec would
    // dominate the tiny parse times.
    for (int i = 0; i < 256; ++i) {
      const std::string& seed = seeds[rng.uniform_index(seeds.size())];
      run_one(mutate(seed, rng));
      ++execs;
    }
  }
  std::printf("fuzz driver: %llu execs over %zu seeds, clean\n",
              static_cast<unsigned long long>(execs), seeds.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--smoke") == 0) {
    const double seconds = std::strtod(argv[2], nullptr);
    if (!(seconds > 0) || argc < 4) {
      std::fprintf(stderr, "usage: %s --smoke SECONDS CORPUS_DIR\n", argv[0]);
      return 2;
    }
    return smoke(seconds, argv[3]);
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::string bytes;
    if (!read_file(argv[i], bytes)) {
      std::fprintf(stderr, "fuzz driver: cannot read %s\n", argv[i]);
      return 2;
    }
    run_one(bytes);
    ++replayed;
  }
  std::printf("fuzz driver: replayed %d file(s), clean\n", replayed);
  return 0;
}
