/// \file fuzz_nn_model.cpp
/// Fuzz harness for the NN model deserializer — the loader that parses
/// ground-produced model files on the flight side, i.e. the classic
/// untrusted-input surface.  The contract under test: for ANY byte
/// string, load_model_from_bytes either returns a fully validated
/// model or nullopt.  It must never throw (ContractViolation
/// included), never crash, and never size an allocation from an
/// unvalidated header count (ASan + the container's memory limit catch
/// the latter).
///
/// Built two ways (tests/fuzz/CMakeLists.txt): with Clang as a real
/// libFuzzer target (-fsanitize=fuzzer), otherwise with the standalone
/// driver_main.cpp, which replays the checked-in corpus and runs
/// deterministic seeded mutations of it — that is what the
/// `fuzz-smoke` gate stage runs under GCC+ASan.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "nn/serialize.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  // The return value is intentionally ignored: accepting OR rejecting
  // is fine, surviving is the property.
  (void)adapt::nn::load_model_from_bytes(bytes);
  return 0;
}
