/// \file fuzz_rings.cpp
/// Fuzz harness for the Compton-ring dataset loader (eval/ring_io) —
/// the interchange format any offline tool can produce, so its header
/// count and per-record payloads are untrusted.  Contract: any byte
/// string either parses (possibly with non-finite records skipped and
/// counted) or returns nullopt — no throw, no crash, and the claimed
/// record count is validated against the real payload size before any
/// reserve().

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "eval/ring_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  (void)adapt::eval::load_rings_from_bytes(bytes);
  return 0;
}
