/// \file fuzz_qat_model.cpp
/// Fuzz harness for the QAT model deserializer (quant/qat_io).  Same
/// contract as fuzz_nn_model: any byte string either parses into a
/// validated SavedQatModel or returns nullopt — no throw, no crash, no
/// unvalidated allocation.
///
/// This harness is the one that found the FakeQuant range bug fixed in
/// qat_io.cpp: a corrupt kFakeQuant payload with lo > hi (or NaN)
/// reached FakeQuant::set_range, whose always-on contract threw
/// ContractViolation out of the loader.  The regression is pinned as a
/// deterministic unit test in tests/quant/qat_io_test.cpp; this
/// harness keeps the whole format surface covered.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "quant/qat_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  (void)adapt::quant::load_qat_model_from_bytes(bytes);
  return 0;
}
