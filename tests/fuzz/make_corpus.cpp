/// \file make_corpus.cpp
/// Regenerates the checked-in seed corpus under tests/fuzz/corpus/.
/// Each seed is a small but structurally complete valid file for its
/// format — valid seeds matter because mutation-based fuzzing only
/// reaches deep parser states (checksum-passing bodies, layer loops,
/// metadata blocks) by perturbing inputs that get there.
///
///   make_fuzz_corpus OUT_DIR
///
/// writes OUT_DIR/{nn_model,qat_model,rings}/seed_*.bin.  Output is
/// deterministic (fixed Rng seeds), so regeneration is diff-clean
/// unless a format actually changed — which is exactly when the corpus
/// SHOULD change, alongside the format version bump.

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "core/rng.hpp"
#include "eval/dataset_gen.hpp"
#include "eval/ring_io.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/data.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "quant/fake_quant.hpp"
#include "quant/qat_io.hpp"
#include "quant/qat_linear.hpp"

namespace {

namespace fs = std::filesystem;
using namespace adapt;

bool write_nn_seeds(const fs::path& dir) {
  core::Rng rng(1);

  // Seed 1: full stack — standardizer, linear/bn/relu/sigmoid, metadata.
  {
    nn::Sequential model;
    model.add(std::make_unique<nn::Linear>(4, 8, rng));
    model.add(std::make_unique<nn::BatchNorm1d>(8));
    model.add(std::make_unique<nn::ReLU>());
    model.add(std::make_unique<nn::Linear>(8, 1, rng));
    model.add(std::make_unique<nn::Sigmoid>());
    nn::Standardizer standardizer;
    standardizer.set({0.1f, 0.2f, 0.3f, 0.4f}, {1.0f, 2.0f, 3.0f, 4.0f});
    const std::map<std::string, double> metadata = {
        {"threshold.bin0", 0.5}, {"epochs", 12.0}};
    if (!nn::save_model(model, standardizer, metadata,
                        (dir / "seed_full.bin").string()))
      return false;
  }

  // Seed 2: minimal — one linear, no standardizer, no metadata.
  {
    nn::Sequential model;
    model.add(std::make_unique<nn::Linear>(2, 2, rng));
    if (!nn::save_model(model, nn::Standardizer{}, {},
                        (dir / "seed_minimal.bin").string()))
      return false;
  }
  return true;
}

bool write_qat_seeds(const fs::path& dir) {
  core::Rng rng(2);

  // Seed 1: calibrated QAT stack with standardizer and metadata.
  {
    nn::Sequential model;
    auto fq_in = std::make_unique<quant::FakeQuant>();
    fq_in->set_range(-1.5f, 2.5f);
    model.add(std::move(fq_in));
    model.add(std::make_unique<quant::QatLinear>(3, 4, rng));
    model.add(std::make_unique<nn::ReLU>());
    auto fq_out = std::make_unique<quant::FakeQuant>();
    fq_out->set_range(0.0f, 6.0f);
    model.add(std::move(fq_out));
    nn::Standardizer standardizer;
    standardizer.set({1.0f, 2.0f, 3.0f}, {0.5f, 0.25f, 0.125f});
    const std::map<std::string, double> metadata = {{"calib.batches", 32.0}};
    if (!quant::save_qat_model(model, standardizer, metadata,
                               (dir / "seed_full.bin").string()))
      return false;
  }

  // Seed 2: minimal — a lone QatLinear.
  {
    nn::Sequential model;
    model.add(std::make_unique<quant::QatLinear>(2, 1, rng));
    if (!quant::save_qat_model(model, nn::Standardizer{}, {},
                               (dir / "seed_minimal.bin").string()))
      return false;
  }
  return true;
}

bool write_ring_seeds(const fs::path& dir) {
  core::Rng rng(3);

  eval::GeneratedRings rings;
  for (int i = 0; i < 4; ++i) {
    recon::ComptonRing r;
    r.axis = rng.isotropic_direction();
    r.eta = rng.uniform(-0.9, 0.9);
    r.d_eta = rng.uniform(0.01, 0.2);
    r.e_total = rng.uniform(0.2, 5.0);
    r.sigma_e_total = 0.05;
    r.hit1 = recon::RingHit{rng.uniform_disk(10.0), 0.3, {0.1, 0.1, 0.1},
                            0.02};
    r.hit2 = recon::RingHit{rng.uniform_disk(10.0), 0.7, {0.1, 0.1, 0.1},
                            0.02};
    r.order_chi2 = rng.uniform(0.0, 2.0);
    r.true_direction = rng.isotropic_direction();
    r.n_hits = 2 + static_cast<int>(rng.uniform_index(3));
    r.origin = (i % 2 == 0) ? detector::Origin::kGrb
                            : detector::Origin::kBackground;
    rings.rings.push_back(r);
    rings.polar_degs.push_back(rng.uniform(0.0, 60.0));
    rings.true_sources.push_back(rng.isotropic_direction());
  }
  if (!eval::save_rings(rings, (dir / "seed_four.bin").string())) return false;

  eval::GeneratedRings empty;
  return eval::save_rings(empty, (dir / "seed_empty.bin").string());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s OUT_DIR\n", argv[0]);
    return 2;
  }
  const fs::path out_dir = argv[1];
  const fs::path nn_dir = out_dir / "nn_model";
  const fs::path qat_dir = out_dir / "qat_model";
  const fs::path ring_dir = out_dir / "rings";
  std::error_code ec;
  fs::create_directories(nn_dir, ec);
  fs::create_directories(qat_dir, ec);
  fs::create_directories(ring_dir, ec);

  if (!write_nn_seeds(nn_dir) || !write_qat_seeds(qat_dir) ||
      !write_ring_seeds(ring_dir)) {
    std::fprintf(stderr, "make_fuzz_corpus: a seed failed to serialize\n");
    return 1;
  }
  std::printf("make_fuzz_corpus: corpus written under %s\n",
              out_dir.string().c_str());
  return 0;
}
