#include "sim/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/stats.hpp"

namespace adapt::sim {
namespace {

TEST(BandSpectrum, SamplesWithinBounds) {
  const BandSpectrum spec;
  core::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const double e = spec.sample(rng);
    ASSERT_GE(e, spec.e_min());
    ASSERT_LE(e, spec.e_max());
  }
}

TEST(BandSpectrum, DensityContinuousAtBreak) {
  const BandParams p;
  const BandSpectrum spec(p);
  const double e_break = (p.alpha - p.beta) * p.e_peak / (2.0 + p.alpha);
  const double below = spec.density(e_break * 0.999);
  const double above = spec.density(e_break * 1.001);
  EXPECT_NEAR(below / above, 1.0, 0.02);
}

TEST(BandSpectrum, MeanEnergyMatchesMonteCarlo) {
  const BandSpectrum spec;
  core::Rng rng(2);
  core::RunningStat s;
  for (int i = 0; i < 100000; ++i) s.add(spec.sample(rng));
  EXPECT_NEAR(s.mean(), spec.mean_energy(), 0.01 * spec.mean_energy());
}

TEST(BandSpectrum, SoftSpectrumDominatedByLowEnergies) {
  const BandSpectrum spec;
  core::Rng rng(3);
  int below_peak = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (spec.sample(rng) < spec.params().e_peak) ++below_peak;
  EXPECT_GT(below_peak / static_cast<double>(n), 0.6);
}

TEST(BandSpectrum, SampleDistributionMatchesDensity) {
  // Chi-square-style check on a coarse log grid.
  const BandSpectrum spec;
  core::Rng rng(4);
  constexpr int kBins = 8;
  const double lmin = std::log(spec.e_min());
  const double lmax = std::log(spec.e_max());
  std::vector<double> counts(kBins, 0.0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double e = spec.sample(rng);
    auto bin = static_cast<int>((std::log(e) - lmin) / (lmax - lmin) * kBins);
    if (bin >= kBins) bin = kBins - 1;
    counts[static_cast<std::size_t>(bin)] += 1.0;
  }
  // Expected mass per bin by trapezoid integration of E * density in
  // log space (same measure the sampler uses).
  std::vector<double> expected(kBins, 0.0);
  double total = 0.0;
  constexpr int kSub = 200;
  for (int b = 0; b < kBins; ++b) {
    const double l0 = lmin + (lmax - lmin) * b / kBins;
    const double l1 = lmin + (lmax - lmin) * (b + 1) / kBins;
    double mass = 0.0;
    for (int s = 0; s < kSub; ++s) {
      const double la = l0 + (l1 - l0) * s / kSub;
      const double lb = l0 + (l1 - l0) * (s + 1) / kSub;
      const double ea = std::exp(la);
      const double eb = std::exp(lb);
      mass += 0.5 * (ea * spec.density(ea) + eb * spec.density(eb)) *
              (lb - la);
    }
    expected[static_cast<std::size_t>(b)] = mass;
    total += mass;
  }
  for (int b = 0; b < kBins; ++b) {
    const double want = expected[static_cast<std::size_t>(b)] / total;
    const double got = counts[static_cast<std::size_t>(b)] / n;
    EXPECT_NEAR(got, want, 0.01 + 0.05 * want) << "bin " << b;
  }
}

TEST(BandSpectrum, RejectsInvalidParams) {
  BandParams p;
  p.alpha = -2.5;
  EXPECT_THROW(BandSpectrum{p}, std::invalid_argument);
  p = BandParams{};
  p.beta = -0.5;  // Must be steeper than alpha.
  EXPECT_THROW(BandSpectrum{p}, std::invalid_argument);
}

TEST(PowerLawSpectrum, IndexControlsHardness) {
  core::Rng rng(5);
  const PowerLawSpectrum soft(2.5, 0.03, 10.0);
  const PowerLawSpectrum hard(1.2, 0.03, 10.0);
  EXPECT_GT(hard.mean_energy(), soft.mean_energy());
}

TEST(PowerLawSpectrum, AnalyticMeanMatches) {
  // For dN/dE ~ E^-2 on [a, b]: mean = ln(b/a) / (1/a - 1/b).
  const double a = 0.03;
  const double b = 10.0;
  const PowerLawSpectrum spec(2.0, a, b);
  const double expected = std::log(b / a) / (1.0 / a - 1.0 / b);
  EXPECT_NEAR(spec.mean_energy(), expected, 0.01 * expected);
}

TEST(PowerLawSpectrum, SamplesWithinBounds) {
  const PowerLawSpectrum spec(1.4, 0.05, 5.0);
  core::Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    const double e = spec.sample(rng);
    ASSERT_GE(e, 0.05);
    ASSERT_LE(e, 5.0);
  }
}

TEST(PowerLawSpectrum, RejectsBadBounds) {
  EXPECT_THROW(PowerLawSpectrum(2.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(PowerLawSpectrum(2.0, 1.0, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::sim
