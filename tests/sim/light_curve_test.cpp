#include "sim/light_curve.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/stats.hpp"
#include "sim/exposure.hpp"

namespace adapt::sim {
namespace {

TEST(LightCurve, PeakTimeMatchesAnalyticForm) {
  LightCurveParams p;
  p.t_start = 0.2;
  p.rise = 0.01;
  p.decay = 0.16;
  const FredLightCurve lc(p, 1.0);
  EXPECT_NEAR(lc.peak_time(), 0.2 + std::sqrt(0.01 * 0.16), 1e-12);
  // The density is maximal at the peak.
  const double peak = lc.density(lc.peak_time());
  EXPECT_GT(peak, lc.density(lc.peak_time() - 0.02));
  EXPECT_GT(peak, lc.density(lc.peak_time() + 0.05));
}

TEST(LightCurve, ZeroBeforeOnsetAndAfterWindow) {
  const FredLightCurve lc({0.3, 0.01, 0.1}, 1.0);
  EXPECT_DOUBLE_EQ(lc.density(0.1), 0.0);
  EXPECT_DOUBLE_EQ(lc.density(0.3), 0.0);
  EXPECT_GT(lc.density(0.35), 0.0);
  EXPECT_DOUBLE_EQ(lc.density(1.0), 0.0);
}

TEST(LightCurve, SamplesRespectSupport) {
  const FredLightCurve lc({0.25, 0.02, 0.12}, 1.0);
  core::Rng rng(1);
  for (int i = 0; i < 3000; ++i) {
    const double t = lc.sample(rng);
    ASSERT_GE(t, 0.25);
    ASSERT_LT(t, 1.0);
  }
}

TEST(LightCurve, SampleDistributionConcentratedAroundPulse) {
  const LightCurveParams p{0.2, 0.01, 0.15};
  const FredLightCurve lc(p, 1.0);
  core::Rng rng(2);
  std::vector<double> times;
  for (int i = 0; i < 20000; ++i) times.push_back(lc.sample(rng));
  std::sort(times.begin(), times.end());
  // Most of a FRED pulse's mass sits within a few decay times.
  const double q90 = times[static_cast<std::size_t>(0.9 * times.size())];
  EXPECT_LT(q90, p.t_start + 4.0 * p.decay);
  const double q10 = times[static_cast<std::size_t>(0.1 * times.size())];
  EXPECT_GT(q10, p.t_start);
}

TEST(LightCurve, SampleHistogramMatchesDensity) {
  const FredLightCurve lc({0.1, 0.02, 0.2}, 1.0);
  core::Rng rng(3);
  constexpr int kBins = 9;
  std::vector<double> counts(kBins, 0.0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double t = lc.sample(rng);
    auto bin = static_cast<int>(t * kBins);
    if (bin >= kBins) bin = kBins - 1;
    counts[static_cast<std::size_t>(bin)] += 1.0;
  }
  // Expected per bin from the density, trapezoid-integrated.
  std::vector<double> expected(kBins, 0.0);
  double total = 0.0;
  for (int b = 0; b < kBins; ++b) {
    double mass = 0.0;
    for (int s = 0; s < 200; ++s) {
      const double t = (b + (s + 0.5) / 200.0) / kBins;
      mass += lc.density(t);
    }
    expected[static_cast<std::size_t>(b)] = mass;
    total += mass;
  }
  for (int b = 0; b < kBins; ++b) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(b)] / n,
                expected[static_cast<std::size_t>(b)] / total,
                0.01)
        << "bin " << b;
  }
}

TEST(LightCurve, ValidatesParameters) {
  EXPECT_THROW(FredLightCurve({0.2, 0.0, 0.1}, 1.0), std::invalid_argument);
  EXPECT_THROW(FredLightCurve({1.5, 0.01, 0.1}, 1.0), std::invalid_argument);
  EXPECT_THROW(FredLightCurve({0.2, 0.01, 0.1}, 0.0), std::invalid_argument);
}

TEST(LightCurve, ExposureAssignsBurstTimesFromPulse) {
  // Integration: GRB events in a mixed window carry pulse-shaped
  // times, background events are uniform.
  const detector::Geometry geometry;
  const auto material = detector::Material::csi();
  const ExposureSimulator simulator(geometry, material);
  core::Rng rng(4);
  const Exposure e = simulator.simulate(GrbConfig{}, BackgroundConfig{}, rng);
  core::RunningStat grb_times;
  core::RunningStat bkg_times;
  for (const auto& ev : e.events) {
    ASSERT_GE(ev.time_s, 0.0);
    ASSERT_LE(ev.time_s, 1.0);
    if (ev.origin == detector::Origin::kGrb)
      grb_times.add(ev.time_s);
    else
      bkg_times.add(ev.time_s);
  }
  // Background uniform: mean ~0.5; GRB pulse: concentrated after
  // onset with mean well below the window middle + decay tail.
  EXPECT_NEAR(bkg_times.mean(), 0.5, 0.05);
  EXPECT_GT(grb_times.mean(), 0.2);
  EXPECT_LT(grb_times.mean(), 0.45);
  EXPECT_LT(grb_times.stddev(), bkg_times.stddev());
}

}  // namespace
}  // namespace adapt::sim
