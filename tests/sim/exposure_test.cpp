#include "sim/exposure.hpp"

#include <gtest/gtest.h>

#include "core/units.hpp"
#include "recon/event_reconstruction.hpp"

namespace adapt::sim {
namespace {

class ExposureTest : public ::testing::Test {
 protected:
  detector::Geometry geometry_{detector::GeometryConfig{}};
  detector::Material material_ = detector::Material::csi();
  ExposureSimulator simulator_{geometry_, material_};
};

TEST_F(ExposureTest, GrbOnlyEventsAllTaggedGrb) {
  core::Rng rng(1);
  GrbConfig grb;
  grb.fluence = 0.5;
  const Exposure e = simulator_.simulate_grb_only(grb, rng);
  EXPECT_GT(e.events.size(), 10u);
  for (const auto& ev : e.events) {
    EXPECT_EQ(ev.origin, detector::Origin::kGrb);
    // Plane wave: all photons share the travel direction -s.
    EXPECT_NEAR((ev.true_direction + e.true_source_direction).norm(), 0.0,
                1e-12);
  }
}

TEST_F(ExposureTest, BackgroundOnlyEventsAllTaggedBackground) {
  core::Rng rng(2);
  BackgroundConfig bkg;
  bkg.photons_per_second = 3000.0;
  const Exposure e = simulator_.simulate_background_only(bkg, rng);
  EXPECT_GT(e.events.size(), 10u);
  for (const auto& ev : e.events) {
    EXPECT_EQ(ev.origin, detector::Origin::kBackground);
  }
}

TEST_F(ExposureTest, MixedWindowContainsBothOrigins) {
  core::Rng rng(3);
  const Exposure e = simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng);
  std::size_t grb = 0;
  std::size_t bkg = 0;
  for (const auto& ev : e.events) {
    if (ev.origin == detector::Origin::kGrb)
      ++grb;
    else
      ++bkg;
  }
  EXPECT_GT(grb, 50u);
  EXPECT_GT(bkg, 50u);
  EXPECT_EQ(e.grb_photons > 0, true);
  EXPECT_EQ(e.background_photons > 0, true);
}

TEST_F(ExposureTest, TrueSourceDirectionMatchesGrbConfig) {
  core::Rng rng(4);
  GrbConfig grb;
  grb.polar_deg = 35.0;
  grb.azimuth_deg = -60.0;
  const Exposure e = simulator_.simulate_grb_only(grb, rng);
  EXPECT_NEAR(core::rad_to_deg(core::polar_of(e.true_source_direction)),
              35.0, 1e-9);
}

TEST_F(ExposureTest, DetectedEventCountScalesWithFluence) {
  core::Rng rng1(5);
  core::Rng rng2(5);
  GrbConfig dim;
  dim.fluence = 0.5;
  GrbConfig bright;
  bright.fluence = 2.0;
  const auto e_dim = simulator_.simulate_grb_only(dim, rng1);
  const auto e_bright = simulator_.simulate_grb_only(bright, rng2);
  const double ratio = static_cast<double>(e_bright.events.size()) /
                       static_cast<double>(e_dim.events.size());
  EXPECT_NEAR(ratio, 4.0, 1.0);
}

TEST_F(ExposureTest, EventsHaveAtLeastOneHit) {
  core::Rng rng(6);
  const Exposure e = simulator_.simulate_grb_only(GrbConfig{}, rng);
  for (const auto& ev : e.events) {
    EXPECT_GE(ev.hits.size(), 1u);
  }
}

TEST_F(ExposureTest, DeterministicGivenSeed) {
  core::Rng rng1(7);
  core::Rng rng2(7);
  const auto a = simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng1);
  const auto b = simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng2);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.grb_photons, b.grb_photons);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    ASSERT_EQ(a.events[i].hits.size(), b.events[i].hits.size());
    EXPECT_DOUBLE_EQ(a.events[i].hits[0].energy, b.events[i].hits[0].energy);
  }
}

TEST_F(ExposureTest, BackgroundRingYieldCalibration) {
  // DESIGN.md contract (paper Sec. II): within the 1-second window,
  // localization receives 2-3x as many background *Compton rings* as
  // GRB rings for a 1 MeV/cm^2 burst.  The ratio is defined after
  // reconstruction: background photons (harder spectrum) convert to
  // accepted rings at a different rate than GRB photons.
  const recon::EventReconstructor reconstructor(material_, {});
  core::Rng rng(8);
  std::size_t grb = 0;
  std::size_t bkg = 0;
  for (int i = 0; i < 5; ++i) {
    const Exposure e =
        simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng);
    for (const auto& ring : reconstructor.reconstruct_all(e.events)) {
      if (ring.origin == detector::Origin::kGrb)
        ++grb;
      else
        ++bkg;
    }
  }
  ASSERT_GT(grb, 100u);
  const double ratio = static_cast<double>(bkg) / static_cast<double>(grb);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 4.0);
}

}  // namespace
}  // namespace adapt::sim
