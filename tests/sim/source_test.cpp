#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.hpp"
#include "core/units.hpp"
#include "detector/geometry.hpp"
#include "sim/background.hpp"
#include "sim/grb_source.hpp"

namespace adapt::sim {
namespace {

TEST(GrbSource, SourceDirectionMatchesConfig) {
  const detector::Geometry g;
  GrbConfig c;
  c.polar_deg = 40.0;
  c.azimuth_deg = 100.0;
  const GrbSource src(c, g);
  const core::Vec3 s = src.source_direction();
  EXPECT_NEAR(core::rad_to_deg(core::polar_of(s)), 40.0, 1e-9);
  EXPECT_NEAR(core::rad_to_deg(core::azimuth_of(s)), 100.0, 1e-9);
}

TEST(GrbSource, PhotonsTravelOppositeToSource) {
  const detector::Geometry g;
  GrbConfig c;
  c.polar_deg = 25.0;
  const GrbSource src(c, g);
  core::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const SourcePhoton p = src.sample_photon(rng);
    EXPECT_NEAR((p.direction + src.source_direction()).norm(), 0.0, 1e-12);
  }
}

TEST(GrbSource, ExpectedPhotonsScaleWithFluence) {
  const detector::Geometry g;
  GrbConfig c1;
  c1.fluence = 1.0;
  GrbConfig c2;
  c2.fluence = 2.0;
  const GrbSource s1(c1, g);
  const GrbSource s2(c2, g);
  EXPECT_NEAR(s2.expected_photons() / s1.expected_photons(), 2.0, 1e-9);
}

TEST(GrbSource, ExpectedPhotonsMatchesFluenceDefinition) {
  const detector::Geometry g;
  GrbConfig c;
  c.fluence = 1.0;
  const GrbSource src(c, g);
  const BandSpectrum spec(c.spectrum);
  const double area = core::kPi * src.aperture_radius() *
                      src.aperture_radius();
  EXPECT_NEAR(src.expected_photons(), area / spec.mean_energy(),
              0.01 * src.expected_photons());
}

TEST(GrbSource, PhotonOriginsUpstreamOfDetector) {
  const detector::Geometry g;
  GrbConfig c;
  c.polar_deg = 0.0;  // Photons travel straight down.
  const GrbSource src(c, g);
  core::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const SourcePhoton p = src.sample_photon(rng);
    EXPECT_GT(p.origin.z, 0.0);  // Above the top tile surface.
    EXPECT_GT(p.energy, 0.0);
  }
}

TEST(GrbSource, PlaneWaveCoversDetectorSilhouette) {
  // At normal incidence the beam must illuminate the whole top tile.
  const detector::Geometry g;
  GrbConfig c;
  c.polar_deg = 0.0;
  const GrbSource src(c, g);
  core::Rng rng(3);
  double max_x = 0.0;
  for (int i = 0; i < 5000; ++i) {
    max_x = std::max(max_x, std::abs(src.sample_photon(rng).origin.x));
  }
  EXPECT_GT(max_x, g.config().tile_half_width);
}

TEST(GrbSource, RejectsBelowHorizonSources) {
  const detector::Geometry g;
  GrbConfig c;
  c.polar_deg = 95.0;
  EXPECT_THROW(GrbSource(c, g), std::invalid_argument);
  c.polar_deg = -5.0;
  EXPECT_THROW(GrbSource(c, g), std::invalid_argument);
}

TEST(GrbSource, PoissonCountFluctuates) {
  const detector::Geometry g;
  const GrbSource src(GrbConfig{}, g);
  core::Rng rng(4);
  core::RunningStat s;
  for (int i = 0; i < 300; ++i)
    s.add(static_cast<double>(src.sample_photon_count(rng)));
  EXPECT_NEAR(s.mean(), src.expected_photons(),
              4.0 * std::sqrt(src.expected_photons() / 300.0) *
                  std::sqrt(300.0));
  EXPECT_GT(s.stddev(), 0.0);
}

TEST(Background, ExpectedCountScalesWithExposure) {
  const detector::Geometry g;
  BackgroundConfig c;
  c.exposure_seconds = 2.0;
  const BackgroundModel m(c, g);
  EXPECT_DOUBLE_EQ(m.expected_photons(), 2.0 * c.photons_per_second);
}

TEST(Background, AlbedoFractionControlsUpwardFlux) {
  const detector::Geometry g;
  BackgroundConfig c;
  c.albedo_fraction = 1.0;
  const BackgroundModel all_albedo(c, g);
  core::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GT(all_albedo.sample_photon(rng).direction.z, 0.0);
  }
  c.albedo_fraction = 0.0;
  const BackgroundModel all_sky(c, g);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(all_sky.sample_photon(rng).direction.z, 0.0);
  }
}

TEST(Background, MixtureFractionApproximatelyRespected) {
  const detector::Geometry g;
  BackgroundConfig c;
  c.albedo_fraction = 0.75;
  const BackgroundModel m(c, g);
  core::Rng rng(6);
  int upward = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (m.sample_photon(rng).direction.z > 0.0) ++upward;
  EXPECT_NEAR(upward / static_cast<double>(n), 0.75, 0.01);
}

TEST(Background, AnnihilationLinePresent) {
  const detector::Geometry g;
  BackgroundConfig c;
  const BackgroundModel m(c, g);
  core::Rng rng(7);
  int line = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (std::abs(m.sample_photon(rng).energy - 0.511) < 1e-12) ++line;
  EXPECT_NEAR(line / static_cast<double>(n), c.annihilation_line_fraction,
              0.01);
}

TEST(Background, EnergiesWithinConfiguredBand) {
  const detector::Geometry g;
  const BackgroundModel m(BackgroundConfig{}, g);
  core::Rng rng(8);
  for (int i = 0; i < 3000; ++i) {
    const double e = m.sample_photon(rng).energy;
    ASSERT_GE(e, 0.03);
    ASSERT_LE(e, 10.0);
  }
}

TEST(Background, RejectsInvalidConfig) {
  const detector::Geometry g;
  BackgroundConfig c;
  c.albedo_fraction = 1.5;
  EXPECT_THROW(BackgroundModel(c, g), std::invalid_argument);
  c = BackgroundConfig{};
  c.exposure_seconds = 0.0;
  EXPECT_THROW(BackgroundModel(c, g), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::sim
