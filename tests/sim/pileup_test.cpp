#include <gtest/gtest.h>

#include "recon/event_reconstruction.hpp"
#include "sim/exposure.hpp"

namespace adapt::sim {
namespace {

class PileupTest : public ::testing::Test {
 protected:
  detector::Geometry geometry_{detector::GeometryConfig{}};
  detector::Material material_ = detector::Material::csi();
  ExposureSimulator simulator_{geometry_, material_};
};

TEST_F(PileupTest, DisabledByDefault) {
  core::Rng rng(1);
  const Exposure e = simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng);
  EXPECT_EQ(e.piled_up_events, 0u);
}

TEST_F(PileupTest, ZeroWindowMergesNothing) {
  core::Rng rng(2);
  PileupConfig pileup;
  pileup.detection_latency_s = 0.0;
  const Exposure e =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng, pileup);
  EXPECT_EQ(e.piled_up_events, 0u);
}

TEST_F(PileupTest, MergeRateScalesWithWindow) {
  // Expected merges ~ N^2 * tau / (2 T): a 10x window gives ~10x the
  // piled-up pairs while the pileup fraction stays small.  (The
  // detected-event rate is ~1.4e4 per second, so windows must sit
  // well below ~7e-5 s to stay out of saturation.)
  core::Rng rng1(3);
  core::Rng rng2(3);
  PileupConfig narrow;
  narrow.detection_latency_s = 2e-7;
  PileupConfig wide;
  wide.detection_latency_s = 2e-6;
  const Exposure a =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng1, narrow);
  const Exposure b =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng2, wide);
  ASSERT_GT(b.piled_up_events, 0u);
  EXPECT_GT(b.piled_up_events, 3 * a.piled_up_events);
}

TEST_F(PileupTest, EventCountDropsByMergedPairs) {
  core::Rng rng_clean(4);
  core::Rng rng_piled(4);
  PileupConfig pileup;
  pileup.detection_latency_s = 1e-4;
  const Exposure clean =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng_clean);
  const Exposure piled =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng_piled, pileup);
  // Same photon histories (same seed) until the pileup stage.
  EXPECT_EQ(piled.events.size() + piled.piled_up_events,
            clean.events.size());
}

TEST_F(PileupTest, MergedEventsCarryCombinedHits) {
  core::Rng rng(5);
  PileupConfig pileup;
  pileup.detection_latency_s = 5e-3;  // Aggressive: many merges.
  const Exposure e =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng, pileup);
  ASSERT_GT(e.piled_up_events, 10u);
  // Merged events are flagged not-fully-absorbed, so the set must
  // contain such events with larger-than-typical hit counts.
  std::size_t big_partial = 0;
  for (const auto& ev : e.events) {
    if (!ev.fully_absorbed && ev.hits.size() >= 3) ++big_partial;
  }
  EXPECT_GT(big_partial, 0u);
}

TEST_F(PileupTest, PileupDegradesRingQuality) {
  // Corrupted multi-photon events either fail reconstruction or give
  // wrong rings: the accepted-ring yield per event must drop.
  const recon::EventReconstructor reconstructor(material_, {});
  core::Rng rng_clean(6);
  core::Rng rng_piled(6);
  PileupConfig pileup;
  pileup.detection_latency_s = 2e-3;
  const Exposure clean =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng_clean);
  const Exposure piled =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng_piled, pileup);
  const auto rings_clean = reconstructor.reconstruct_all(clean.events);
  const auto rings_piled = reconstructor.reconstruct_all(piled.events);
  EXPECT_LT(rings_piled.size(), rings_clean.size());
}

}  // namespace
}  // namespace adapt::sim
