#include <gtest/gtest.h>

#include "recon/event_reconstruction.hpp"
#include "sim/exposure.hpp"
#include "sim/pileup.hpp"

namespace adapt::sim {
namespace {

detector::MeasuredEvent event_at(double t, detector::Origin origin,
                                 std::size_t n_hits = 2,
                                 bool fully_absorbed = true) {
  detector::MeasuredEvent ev;
  ev.time_s = t;
  ev.origin = origin;
  ev.fully_absorbed = fully_absorbed;
  ev.hits.resize(n_hits);
  for (std::size_t i = 0; i < n_hits; ++i) ev.hits[i].energy = 0.1;
  return ev;
}

class PileupTest : public ::testing::Test {
 protected:
  detector::Geometry geometry_{detector::GeometryConfig{}};
  detector::Material material_ = detector::Material::csi();
  ExposureSimulator simulator_{geometry_, material_};
};

TEST_F(PileupTest, DisabledByDefault) {
  core::Rng rng(1);
  const Exposure e = simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng);
  EXPECT_EQ(e.piled_up_events, 0u);
}

TEST_F(PileupTest, ZeroWindowMergesNothing) {
  core::Rng rng(2);
  PileupConfig pileup;
  pileup.detection_latency_s = 0.0;
  const Exposure e =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng, pileup);
  EXPECT_EQ(e.piled_up_events, 0u);
}

TEST_F(PileupTest, MergeRateScalesWithWindow) {
  // Expected merges ~ N^2 * tau / (2 T): a 10x window gives ~10x the
  // piled-up pairs while the pileup fraction stays small.  (The
  // detected-event rate is ~1.4e4 per second, so windows must sit
  // well below ~7e-5 s to stay out of saturation.)
  core::Rng rng1(3);
  core::Rng rng2(3);
  PileupConfig narrow;
  narrow.detection_latency_s = 2e-7;
  PileupConfig wide;
  wide.detection_latency_s = 2e-6;
  const Exposure a =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng1, narrow);
  const Exposure b =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng2, wide);
  ASSERT_GT(b.piled_up_events, 0u);
  EXPECT_GT(b.piled_up_events, 3 * a.piled_up_events);
}

TEST_F(PileupTest, EventCountDropsByMergedPairs) {
  core::Rng rng_clean(4);
  core::Rng rng_piled(4);
  PileupConfig pileup;
  pileup.detection_latency_s = 1e-4;
  const Exposure clean =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng_clean);
  const Exposure piled =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng_piled, pileup);
  // Same photon histories (same seed) until the pileup stage.
  EXPECT_EQ(piled.events.size() + piled.piled_up_events,
            clean.events.size());
}

TEST_F(PileupTest, MergedEventsCarryCombinedHits) {
  core::Rng rng(5);
  PileupConfig pileup;
  pileup.detection_latency_s = 5e-3;  // Aggressive: many merges.
  const Exposure e =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng, pileup);
  ASSERT_GT(e.piled_up_events, 10u);
  // Merged events are flagged not-fully-absorbed, so the set must
  // contain such events with larger-than-typical hit counts.
  std::size_t big_partial = 0;
  for (const auto& ev : e.events) {
    if (!ev.fully_absorbed && ev.hits.size() >= 3) ++big_partial;
  }
  EXPECT_GT(big_partial, 0u);
}

TEST_F(PileupTest, PileupDegradesRingQuality) {
  // Corrupted multi-photon events either fail reconstruction or give
  // wrong rings: the accepted-ring yield per event must drop.
  const recon::EventReconstructor reconstructor(material_, {});
  core::Rng rng_clean(6);
  core::Rng rng_piled(6);
  PileupConfig pileup;
  pileup.detection_latency_s = 2e-3;
  const Exposure clean =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng_clean);
  const Exposure piled =
      simulator_.simulate(GrbConfig{}, BackgroundConfig{}, rng_piled, pileup);
  const auto rings_clean = reconstructor.reconstruct_all(clean.events);
  const auto rings_piled = reconstructor.reconstruct_all(piled.events);
  EXPECT_LT(rings_piled.size(), rings_clean.size());
}

// ---------------------------------------------------------------------
// merge_coincident: the public timeline transform (used directly by the
// scenario engine on timelines it assembles itself).

TEST(MergeCoincident, ZeroWindowAndSmallInputsAreNoOps) {
  std::vector<detector::MeasuredEvent> empty;
  EXPECT_EQ(merge_coincident(empty, 1.0), 0u);

  std::vector<detector::MeasuredEvent> one{
      event_at(0.5, detector::Origin::kGrb)};
  EXPECT_EQ(merge_coincident(one, 1.0), 0u);
  EXPECT_EQ(one.size(), 1u);

  std::vector<detector::MeasuredEvent> pair{
      event_at(0.1, detector::Origin::kGrb),
      event_at(0.1001, detector::Origin::kGrb)};
  EXPECT_EQ(merge_coincident(pair, 0.0), 0u);
  EXPECT_EQ(pair.size(), 2u);
}

TEST(MergeCoincident, AnchorBasedGroupingMergesHitsAndTags) {
  // 0.100 and 0.1004 fall inside the 1 ms window of the first; 0.102
  // starts a new group.  Background poisons the merged tag and
  // fully_absorbed is cleared.
  std::vector<detector::MeasuredEvent> events{
      event_at(0.102, detector::Origin::kGrb, 2, true),
      event_at(0.100, detector::Origin::kGrb, 2, true),
      event_at(0.1004, detector::Origin::kBackground, 3, true)};
  EXPECT_EQ(merge_coincident(events, 1e-3), 1u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time_s, 0.100);
  EXPECT_EQ(events[0].hits.size(), 5u);
  EXPECT_EQ(events[0].origin, detector::Origin::kBackground);
  EXPECT_FALSE(events[0].fully_absorbed);
  // The survivor past the window is untouched.
  EXPECT_EQ(events[1].time_s, 0.102);
  EXPECT_EQ(events[1].hits.size(), 2u);
  EXPECT_EQ(events[1].origin, detector::Origin::kGrb);
  EXPECT_TRUE(events[1].fully_absorbed);
}

TEST(MergeCoincident, PureGrbGroupKeepsGrbTag) {
  std::vector<detector::MeasuredEvent> events{
      event_at(0.2, detector::Origin::kGrb, 2, true),
      event_at(0.2002, detector::Origin::kGrb, 2, true)};
  EXPECT_EQ(merge_coincident(events, 1e-3), 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].origin, detector::Origin::kGrb);
  EXPECT_FALSE(events[0].fully_absorbed);
}

TEST(MergeCoincident, ReturnValueEqualsSizeDrop) {
  core::Rng rng(7);
  std::vector<detector::MeasuredEvent> events;
  for (int i = 0; i < 500; ++i)
    events.push_back(event_at(rng.uniform(0.0, 0.01),
                              detector::Origin::kBackground));
  const std::size_t before = events.size();
  const std::uint64_t merged = merge_coincident(events, 5e-5);
  EXPECT_GT(merged, 0u);
  EXPECT_EQ(events.size() + merged, before);
  // Result stays time-sorted with groups at least a window apart.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].time_s, events[i - 1].time_s + 5e-5);
}

}  // namespace
}  // namespace adapt::sim
