/// End-to-end integration tests: the full chain from photons to a
/// localized burst, including a small-scale model training pass.
/// These use reduced statistics; the benches run the paper-scale
/// versions.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/units.hpp"
#include "eval/containment.hpp"
#include "eval/model_provider.hpp"
#include "fpga/hls_model.hpp"

namespace adapt::eval {
namespace {

/// Shared tiny model set, trained once per test binary into an
/// isolated cache (never touching the benches' canonical cache).
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    setup_ = new TrialSetup();
    ModelProviderConfig cfg;
    cfg.cache_dir = "/tmp/adaptml_integration_models";
    std::filesystem::remove_all(cfg.cache_dir);
    cfg.dataset.rings_per_angle = 400;
    cfg.dataset.polar_angles_deg = {0, 20, 40, 60, 80};
    cfg.max_epochs = 8;
    cfg.patience = 8;
    cfg.qat_epochs = 1;
    provider_ = new ModelProvider(*setup_, cfg);
  }
  static void TearDownTestSuite() {
    delete provider_;
    delete setup_;
    std::filesystem::remove_all("/tmp/adaptml_integration_models");
  }

  static TrialSetup* setup_;
  static ModelProvider* provider_;
};

TrialSetup* IntegrationTest::setup_ = nullptr;
ModelProvider* IntegrationTest::provider_ = nullptr;

TEST_F(IntegrationTest, TrainingProducesBetterThanChanceClassifier) {
  EXPECT_GT(provider_->background_test_accuracy(), 0.55);
}

TEST_F(IntegrationTest, DetaRegressionBeatsConstantPredictor) {
  // MSE against ln(d_eta) targets spanning [ln 1e-4, ln 2]: the raw
  // target variance is ~5-6, so even this severely reduced training
  // configuration (8 epochs, ~2k rings) must land well below it.
  EXPECT_LT(provider_->deta_test_mse(), 4.6);
}

TEST_F(IntegrationTest, BrightBurstLocalizesWithAndWithoutMl) {
  TrialSetup setup = *setup_;
  setup.grb.fluence = 2.0;
  setup.grb.polar_deg = 30.0;
  const TrialRunner runner(setup);

  PipelineVariant plain;
  PipelineVariant ml;
  ml.background_net = &provider_->background_net();
  ml.deta_net = &provider_->deta_net();

  int plain_ok = 0;
  int ml_ok = 0;
  for (int t = 0; t < 4; ++t) {
    core::Rng rng1(300 + t);
    core::Rng rng2(300 + t);
    const auto a = runner.run(plain, rng1);
    const auto b = runner.run(ml, rng2);
    if (a.valid && a.error_deg < 6.0) ++plain_ok;
    if (b.valid && b.error_deg < 6.0) ++ml_ok;
  }
  EXPECT_GE(plain_ok, 3);
  EXPECT_GE(ml_ok, 3);
}

TEST_F(IntegrationTest, MlImprovesDimBurstLocalization) {
  // The paper's headline: for dim bursts the ML pipeline beats the
  // prior pipeline.  Use a marginal fluence where the plain pipeline
  // struggles.
  TrialSetup setup = *setup_;
  setup.grb.fluence = 0.5;
  setup.grb.polar_deg = 20.0;
  const TrialRunner runner(setup);

  PipelineVariant plain;
  PipelineVariant ml;
  ml.background_net = &provider_->background_net();
  ml.deta_net = &provider_->deta_net();

  int plain_ok = 0;
  int ml_ok = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    core::Rng rng1(400 + t);
    core::Rng rng2(400 + t);
    if (const auto a = runner.run(plain, rng1); a.valid && a.error_deg < 6.0)
      ++plain_ok;
    if (const auto b = runner.run(ml, rng2); b.valid && b.error_deg < 6.0)
      ++ml_ok;
  }
  EXPECT_GE(ml_ok, plain_ok);
}

TEST_F(IntegrationTest, QuantizedNetAgreesWithFp32Mostly) {
  TrialSetup setup = *setup_;
  const TrialRunner runner(setup);
  core::Rng rng(17);
  const auto rings = runner.reconstruct_window(rng);
  ASSERT_GT(rings.size(), 50u);

  auto& fp32 = provider_->background_net();
  auto& int8 = provider_->background_net_int8();
  ASSERT_TRUE(int8.quantized());
  const auto a = fp32.classify(rings, 30.0);
  const auto b = int8.classify(rings, 30.0);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] == b[i]) ++agree;
  // INT8 and FP32 were trained independently (the INT8 path trains the
  // layer-swapped model), so expect agreement well above chance rather
  // than identity.
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(a.size()), 0.7);
}

TEST_F(IntegrationTest, FpgaKernelSynthesizesFromTrainedModel) {
  const auto spec = fpga::kernel_spec_from(provider_->fused_background());
  ASSERT_EQ(spec.size(), 4u);
  const auto int8 = fpga::synthesize(spec, fpga::DataType::kInt8);
  const auto fp32 = fpga::synthesize(spec, fpga::DataType::kFp32);
  EXPECT_GT(int8.throughput_per_second(), fp32.throughput_per_second());
}

TEST_F(IntegrationTest, ModelCacheRoundTripsThroughProvider) {
  // A second provider over the same cache directory must load rather
  // than retrain, and produce identical classifications.
  ModelProviderConfig cfg;
  cfg.cache_dir = "/tmp/adaptml_integration_models";
  cfg.dataset.rings_per_angle = 400;
  cfg.dataset.polar_angles_deg = {0, 20, 40, 60, 80};
  cfg.max_epochs = 8;
  cfg.patience = 8;
  cfg.qat_epochs = 1;
  ModelProvider reloaded(*setup_, cfg);

  const TrialRunner runner(*setup_);
  core::Rng rng(21);
  const auto rings = runner.reconstruct_window(rng);
  const auto a = provider_->background_net().classify(rings, 10.0);
  const auto b = reloaded.background_net().classify(rings, 10.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);

  const auto da = provider_->deta_net().predict(rings, 10.0);
  const auto db = reloaded.deta_net().predict(rings, 10.0);
  for (std::size_t i = 0; i < da.size(); ++i) EXPECT_NEAR(da[i], db[i], 1e-6);
}

}  // namespace
}  // namespace adapt::eval
