#include "recon/event_reconstruction.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/units.hpp"
#include "detector/readout.hpp"
#include "physics/compton.hpp"
#include "core/mat3.hpp"
#include "physics/transport.hpp"
#include "sim/grb_source.hpp"

namespace adapt::recon {
namespace {

using detector::MeasuredEvent;
using detector::MeasuredHit;

/// Build a measured event from a synthetic fully-absorbed two-scatter
/// trajectory of a photon with energy `e0` traveling along -z,
/// scattering at `cos_theta` at the origin of layer 0.
MeasuredEvent synthetic_two_hit(double e0, double cos_theta,
                                double sigma_e_rel = 1e-4) {
  const double e_out = physics::compton_scattered_energy(e0, cos_theta);
  const double dep1 = e0 - e_out;

  MeasuredEvent ev;
  MeasuredHit h1;
  h1.position = {0.0, 0.0, -0.5};
  h1.energy = dep1;
  h1.sigma_energy = dep1 * sigma_e_rel;
  h1.sigma_position = {0.05, 0.05, 0.05};
  h1.layer = 0;

  // Second hit along the scattered direction (choose azimuth 0).
  const double sin_theta = std::sqrt(1.0 - cos_theta * cos_theta);
  const core::Vec3 dir{sin_theta, 0.0, -cos_theta};  // From travel -z.
  // Note: scattered direction for incoming (0,0,-1) at angle theta:
  // rotate; for azimuth 0 this is (sin, 0, -cos).
  MeasuredHit h2;
  h2.position = h1.position + dir * 9.0;
  h2.energy = e_out;
  h2.sigma_energy = e_out * sigma_e_rel;
  h2.sigma_position = {0.05, 0.05, 0.05};
  h2.layer = 1;

  ev.hits = {h1, h2};
  ev.origin = detector::Origin::kGrb;
  ev.true_direction = {0.0, 0.0, -1.0};
  ev.true_energy = e0;
  ev.fully_absorbed = true;
  return ev;
}

class ReconstructionTest : public ::testing::Test {
 protected:
  detector::Material material_ = detector::Material::csi();
  EventReconstructor reconstructor_{material_, {}};
};

TEST_F(ReconstructionTest, CleanTwoHitEventYieldsExactEta) {
  // Forward-peaked scatter: the reverse ordering is kinematically
  // impossible (its implied first deposit exceeds the backscatter
  // limit), so the ordering is unambiguous and eta must be exact.
  const double e0 = 1.0;
  const double cos_theta = 0.9;
  const auto ev = synthetic_two_hit(e0, cos_theta);
  const auto ring = reconstructor_.reconstruct(ev);
  ASSERT_TRUE(ring.has_value());
  EXPECT_NEAR(ring->eta, cos_theta, 1e-9);
  // Axis points from hit1 back toward hit2...source side: the source
  // (at +z) must satisfy c.s = eta.
  EXPECT_NEAR(ring->cosine_to({0, 0, 1}), cos_theta, 1e-9);
  EXPECT_EQ(ring->n_hits, 2);
  EXPECT_GT(ring->d_eta, 0.0);
}

TEST_F(ReconstructionTest, SingleHitEventRejected) {
  MeasuredEvent ev;
  MeasuredHit h;
  h.position = {0, 0, -0.5};
  h.energy = 0.5;
  h.sigma_energy = 0.01;
  ev.hits = {h};
  ReconstructionStats stats;
  EXPECT_FALSE(reconstructor_.reconstruct(ev, &stats).has_value());
  EXPECT_EQ(stats.too_few_hits, 1u);
}

TEST_F(ReconstructionTest, EnergyCutsApplied) {
  ReconstructionStats stats;
  // Too dim.
  auto ev = synthetic_two_hit(0.06, 0.4);
  EXPECT_FALSE(reconstructor_.reconstruct(ev, &stats).has_value());
  EXPECT_EQ(stats.energy_cut, 1u);
}

TEST_F(ReconstructionTest, ShortLeverArmRejected) {
  auto ev = synthetic_two_hit(1.0, 0.4);
  // Collapse the lever arm to 1 cm (below the 2.5 cm floor).
  const core::Vec3 d =
      (ev.hits[1].position - ev.hits[0].position).normalized();
  ev.hits[1].position = ev.hits[0].position + d * 1.0;
  ReconstructionStats stats;
  EXPECT_FALSE(reconstructor_.reconstruct(ev, &stats).has_value());
  EXPECT_GE(stats.lever_arm_cut + stats.ambiguous_order, 1u);
}

TEST_F(ReconstructionTest, KinematicallyImpossibleEventRejected) {
  // Symmetric 100 keV + 100 keV deposits: for a 200 keV photon either
  // ordering implies cos(theta) = 1 - m_e c^2 / E ~ -1.6, beyond the
  // backscatter limit in both directions — no valid Compton sequence.
  MeasuredEvent ev = synthetic_two_hit(1.0, 0.4);
  ev.hits[0].energy = 0.1;
  ev.hits[1].energy = 0.1;
  ReconstructionStats stats;
  EXPECT_FALSE(reconstructor_.reconstruct(ev, &stats).has_value());
  EXPECT_GE(stats.eta_invalid + stats.ambiguous_order + stats.energy_cut, 1u);
}

TEST_F(ReconstructionTest, ReconstructAllMatchesIndividual) {
  std::vector<MeasuredEvent> events;
  for (double c : {0.2, 0.5, 0.8}) events.push_back(synthetic_two_hit(1.0, c));
  ReconstructionStats stats;
  const auto rings = reconstructor_.reconstruct_all(events, &stats);
  EXPECT_EQ(stats.total(), events.size());
  std::size_t individually_accepted = 0;
  for (const auto& ev : events)
    if (reconstructor_.reconstruct(ev)) ++individually_accepted;
  EXPECT_EQ(rings.size(), individually_accepted);
}

TEST_F(ReconstructionTest, TruthTagsCarriedOntoRing) {
  auto ev = synthetic_two_hit(1.0, 0.4);
  ev.origin = detector::Origin::kBackground;
  const auto ring = reconstructor_.reconstruct(ev);
  ASSERT_TRUE(ring.has_value());
  EXPECT_EQ(ring->origin, detector::Origin::kBackground);
  EXPECT_NEAR(ring->true_direction.z, -1.0, 1e-12);
}

TEST_F(ReconstructionTest, ThreeHitOrderingRecoveredFromGeometry) {
  // Build a clean 3-hit trajectory: two scatters then photoabsorption,
  // presented in scrambled order; the chi^2 ordering must recover it.
  const double e0 = 1.2;
  const double c1 = 0.55;
  const double e1_out = physics::compton_scattered_energy(e0, c1);
  const double dep1 = e0 - e1_out;
  const double c2 = 0.30;
  const double e2_out = physics::compton_scattered_energy(e1_out, c2);
  const double dep2 = e1_out - e2_out;

  const core::Vec3 p0{0.0, 0.0, -0.5};
  const double s1 = std::sqrt(1.0 - c1 * c1);
  const core::Vec3 d1{s1, 0.0, -c1};
  const core::Vec3 p1 = p0 + d1 * 9.0;
  // Second scatter: rotate by theta2 about d1 (pick the in-plane one).
  const core::Mat3 frame = core::Mat3::frame_to(d1);
  const double s2 = std::sqrt(1.0 - c2 * c2);
  const core::Vec3 d2 = frame * core::Vec3{s2, 0.0, c2};
  const core::Vec3 p2 = p1 + d2 * 8.0;

  const auto make_hit = [](const core::Vec3& p, double e, int layer) {
    MeasuredHit h;
    h.position = p;
    h.energy = e;
    h.sigma_energy = e * 0.01;
    h.sigma_position = {0.1, 0.1, 0.1};
    h.layer = layer;
    return h;
  };

  MeasuredEvent ev;
  // Scrambled order: last interaction first.
  ev.hits = {make_hit(p2, e2_out, 2), make_hit(p0, dep1, 0),
             make_hit(p1, dep2, 1)};
  ev.true_direction = {0, 0, -1};
  ev.true_energy = e0;
  ev.fully_absorbed = true;

  const auto ring = reconstructor_.reconstruct(ev);
  ASSERT_TRUE(ring.has_value());
  EXPECT_EQ(ring->n_hits, 3);
  // Correct ordering implies hit1 is the p0 interaction...
  EXPECT_NEAR((ring->hit1.position - p0).norm(), 0.0, 1e-9);
  // ...and eta reproduces the first scattering cosine.
  EXPECT_NEAR(ring->eta, c1, 0.05);
}

TEST_F(ReconstructionTest, SimulatedRingsMostlyContainTrueSource) {
  // Property over the full chain: simulate GRB photons, digitize,
  // reconstruct; a majority of accepted rings must constrain the true
  // source within a few d_eta.
  const detector::Geometry geometry;
  const physics::Transport transport(geometry, material_);
  const detector::ReadoutModel readout(geometry, {});
  sim::GrbConfig grb;
  grb.polar_deg = 20.0;
  const sim::GrbSource source(grb, geometry);
  core::Rng rng(42);
  const core::Vec3 s = source.source_direction();

  std::size_t accepted = 0;
  std::size_t contained = 0;
  for (int i = 0; i < 40000 && accepted < 250; ++i) {
    const auto photon = source.sample_photon(rng);
    auto raw = transport.propagate(photon.origin, photon.direction,
                                   photon.energy, rng);
    if (raw.hits.empty()) continue;
    const auto measured = readout.read_out(raw, rng);
    if (!measured) continue;
    const auto ring = reconstructor_.reconstruct(*measured);
    if (!ring) continue;
    ++accepted;
    if (std::abs(ring->eta_error(s)) < 4.0 * ring->d_eta) ++contained;
  }
  ASSERT_GE(accepted, 100u);
  EXPECT_GT(static_cast<double>(contained) / static_cast<double>(accepted),
            0.5);
}

TEST_F(ReconstructionTest, StatsBucketsSumToTotal) {
  const detector::Geometry geometry;
  const physics::Transport transport(geometry, material_);
  const detector::ReadoutModel readout(geometry, {});
  sim::GrbConfig grb;
  const sim::GrbSource source(grb, geometry);
  core::Rng rng(43);

  std::vector<MeasuredEvent> events;
  for (int i = 0; i < 5000; ++i) {
    const auto photon = source.sample_photon(rng);
    auto raw = transport.propagate(photon.origin, photon.direction,
                                   photon.energy, rng);
    if (raw.hits.empty()) continue;
    if (auto m = readout.read_out(raw, rng)) events.push_back(*m);
  }
  ReconstructionStats stats;
  const auto rings = reconstructor_.reconstruct_all(events, &stats);
  EXPECT_EQ(stats.total(), events.size());
  EXPECT_EQ(stats.accepted, rings.size());
}

}  // namespace
}  // namespace adapt::recon
