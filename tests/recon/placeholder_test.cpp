// placeholder
