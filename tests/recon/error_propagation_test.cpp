#include "recon/error_propagation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/units.hpp"

namespace adapt::recon {
namespace {

RingHit make_hit(const core::Vec3& pos, double e, double sigma_e,
                 double sigma_pos = 0.2) {
  RingHit h;
  h.position = pos;
  h.energy = e;
  h.sigma_energy = sigma_e;
  h.sigma_position = {sigma_pos, sigma_pos, sigma_pos};
  return h;
}

TEST(ErrorPropagation, EnergyTermMatchesAnalyticDerivatives) {
  // Small-sigma regime: compare against a finite-difference estimate.
  const double e_total = 1.0;
  const double e1 = 0.4;
  const double s_total = 0.01;
  const double s1 = 0.008;

  const double base =
      d_eta_energy_term(e_total, e1, s_total, s1);

  // Finite difference of eta wrt e_total and e1.
  const auto eta = [](double et, double ef) {
    return 1.0 + core::kElectronMassMeV * (1.0 / et - 1.0 / (et - ef));
  };
  const double h = 1e-6;
  const double de_total = (eta(e_total + h, e1) - eta(e_total - h, e1)) /
                          (2.0 * h);
  const double de1 = (eta(e_total, e1 + h) - eta(e_total, e1 - h)) / (2.0 * h);
  const double expected = std::sqrt(de_total * de_total * s_total * s_total +
                                    de1 * de1 * s1 * s1);
  EXPECT_NEAR(base, expected, 1e-6);
}

TEST(ErrorPropagation, EnergyTermGrowsWithSigma) {
  const double a = d_eta_energy_term(1.0, 0.4, 0.01, 0.01);
  const double b = d_eta_energy_term(1.0, 0.4, 0.03, 0.03);
  EXPECT_NEAR(b / a, 3.0, 1e-9);
}

TEST(ErrorPropagation, LowEnergyRingsAreThicker) {
  // eta derivatives scale like m/E^2: dim events carry much larger
  // d_eta at fixed relative resolution.
  const double dim = d_eta_energy_term(0.2, 0.08, 0.2 * 0.03, 0.08 * 0.05);
  const double bright = d_eta_energy_term(2.0, 0.8, 2.0 * 0.03, 0.8 * 0.05);
  EXPECT_GT(dim, 5.0 * bright);
}

TEST(ErrorPropagation, EnergyTermValidatesInput) {
  EXPECT_THROW(d_eta_energy_term(1.0, 1.0, 0.01, 0.01),
               std::invalid_argument);
  EXPECT_THROW(d_eta_energy_term(1.0, 0.0, 0.01, 0.01),
               std::invalid_argument);
}

TEST(ErrorPropagation, PositionTermShrinksWithLeverArm) {
  const RingHit near1 = make_hit({0, 0, 0}, 0.3, 0.01);
  const RingHit near2 = make_hit({0, 0, -3}, 0.3, 0.01);
  const RingHit far2 = make_hit({0, 0, -30}, 0.3, 0.01);
  const double short_lever = d_eta_position_term(near1, near2, 0.5);
  const double long_lever = d_eta_position_term(near1, far2, 0.5);
  EXPECT_NEAR(short_lever / long_lever, 10.0, 1e-6);
}

TEST(ErrorPropagation, PositionTermVanishesAtConeApexAngles) {
  // sin(theta) factor: a ring with eta = +-1 has zero sensitivity of
  // the cosine to axis tilt at first order.
  const RingHit h1 = make_hit({0, 0, 0}, 0.3, 0.01);
  const RingHit h2 = make_hit({0, 0, -10}, 0.3, 0.01);
  EXPECT_DOUBLE_EQ(d_eta_position_term(h1, h2, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(d_eta_position_term(h1, h2, -1.0), 0.0);
  EXPECT_GT(d_eta_position_term(h1, h2, 0.0), 0.0);
}

TEST(ErrorPropagation, DegenerateLeverArmIsMaximalUncertainty) {
  const RingHit h1 = make_hit({1, 2, -3}, 0.3, 0.01);
  const RingHit h2 = make_hit({1, 2, -3}, 0.3, 0.01);
  EXPECT_DOUBLE_EQ(d_eta_position_term(h1, h2, 0.5), 1.0);
}

TEST(ErrorPropagation, FullPropagationIsQuadratureSum) {
  const RingHit h1 = make_hit({0, 0, 0}, 0.4, 0.012);
  const RingHit h2 = make_hit({0, 0, -10}, 0.3, 0.010);
  const double eta = 0.3;
  const double e_total = 1.0;
  const double s_total = 0.02;
  const double energy = d_eta_energy_term(e_total, h1.energy, s_total,
                                          h1.sigma_energy);
  const double position = d_eta_position_term(h1, h2, eta);
  const double full =
      propagate_d_eta(h1, h2, e_total, s_total, eta, 1e-6);
  EXPECT_NEAR(full, std::sqrt(energy * energy + position * position), 1e-12);
}

TEST(ErrorPropagation, FloorApplied) {
  // Absurdly precise measurements still get the configured floor.
  const RingHit h1 = make_hit({0, 0, 0}, 0.4, 1e-9, 1e-9);
  const RingHit h2 = make_hit({0, 0, -10}, 0.3, 1e-9, 1e-9);
  EXPECT_DOUBLE_EQ(propagate_d_eta(h1, h2, 1.0, 1e-9, 0.3, 0.005), 0.005);
}

TEST(ErrorPropagation, KnownBlindSpotMisorderedHitsNotReflected) {
  // Document the paper's motivating flaw: propagation of error cannot
  // know the hits were mis-ordered.  Swapping the hits changes the
  // estimate only through the energies/sigma, not through any
  // "wrongness" signal — both orderings yield small, confident d_eta.
  const RingHit h1 = make_hit({0, 0, 0}, 0.40, 0.012);
  const RingHit h2 = make_hit({0, 0, -10}, 0.35, 0.011);
  const double fwd = propagate_d_eta(h1, h2, 0.75, 0.016, 0.2);
  const double rev = propagate_d_eta(h2, h1, 0.75, 0.016, 0.2);
  EXPECT_LT(fwd, 0.2);
  EXPECT_LT(rev, 0.2);
}

}  // namespace
}  // namespace adapt::recon
